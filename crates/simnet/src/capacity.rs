//! Max-min fair sharing of a contended resource.
//!
//! During pre-copy the migration stream reads the whole disk while the
//! guest workload keeps issuing its own I/O; the paper observes that "the
//! disk I/O throughput is the bottleneck of the whole system performance"
//! (§VI-C-3) and that limiting the migration rate gives the workload back
//! about half of its lost throughput. We model both the disk and the NIC
//! as capacity pools shared max-min fairly among their demands.
//!
//! These functions sit on the orchestrator's per-tick hot loop, inside
//! lintkit's no-panic zone: degenerate inputs are *clamped*, never
//! asserted. A `NaN` or negative capacity allocates nothing (the pool is
//! unusable), an infinite capacity satisfies every demand, and `NaN` or
//! non-positive demands receive zero.

/// Clamp a capacity to the usable domain: `NaN` and negative values read
/// as an empty pool. `+inf` passes through (an uncontended pool).
fn sane_capacity(capacity: f64) -> f64 {
    if capacity.is_nan() || capacity < 0.0 {
        0.0
    } else {
        capacity
    }
}

/// Allocate `capacity` among `demands` using max-min fairness: every
/// demand receives `min(demand, fair share)`, with leftover capacity from
/// under-using demands redistributed among the rest.
///
/// Returns one allocation per demand, in order. Zero, negative and `NaN`
/// demands receive zero. The allocations never exceed the demands and
/// never sum to more than `capacity`.
///
/// Never panics: a `NaN` or negative capacity is clamped to an empty pool
/// (all-zero allocations) and an infinite capacity serves every demand in
/// full, so a degenerate demand set in the orchestrator's hot loop
/// degrades instead of aborting.
pub fn max_min_share(capacity: f64, demands: &[f64]) -> Vec<f64> {
    let mut alloc = vec![0.0; demands.len()];
    let mut remaining = sane_capacity(capacity);
    let mut active: Vec<usize> = (0..demands.len()).filter(|&i| demands[i] > 0.0).collect();

    // Repeatedly give each active demand an equal share; demands smaller
    // than the share are satisfied exactly and drop out, freeing capacity.
    while !active.is_empty() && remaining > 1e-12 {
        let share = remaining / active.len() as f64;
        let mut satisfied = Vec::new();
        for &i in &active {
            if demands[i] - alloc[i] <= share {
                satisfied.push(i);
            }
        }
        if satisfied.is_empty() {
            // Everyone can absorb the full share.
            for &i in &active {
                alloc[i] += share;
            }
            remaining = 0.0;
        } else {
            for &i in &satisfied {
                remaining -= demands[i] - alloc[i];
                alloc[i] = demands[i];
            }
            active.retain(|i| !satisfied.contains(i));
        }
    }
    alloc
}

/// Convenience for the ubiquitous two-flow case (workload vs migration).
/// Returns `(workload_share, migration_share)`.
pub fn share_two(capacity: f64, workload_demand: f64, migration_demand: f64) -> (f64, f64) {
    let a = max_min_share(capacity, &[workload_demand, migration_demand]);
    (a[0], a[1])
}

/// Seek-aware disk sharing between a guest workload and the migration
/// stream.
///
/// A mechanical disk's aggregate throughput drops when a sequential
/// migration scan interleaves with guest I/O: every switch between the
/// two streams costs seeks. We model the effective capacity as
/// `c0 - penalty × migration_share` and solve the resulting fixed point
/// with damped iteration. This reproduces the paper's §VI-C-3
/// observation: rate-limiting the migration gives the workload back
/// about half of its lost throughput while stretching pre-copy by only
/// ~37 % — impossible under fixed-capacity sharing, natural under seek
/// interference.
///
/// Returns `(workload_share, migration_share)`.
///
/// Never panics: like [`max_min_share`], a `NaN` or negative `c0` reads
/// as an empty pool, and a `NaN`, negative or infinite `penalty` is
/// clamped to zero (no interference model rather than an undefined one).
pub fn seek_aware_share(
    c0: f64,
    penalty: f64,
    workload_demand: f64,
    migration_demand: f64,
) -> (f64, f64) {
    let c0 = sane_capacity(c0);
    let penalty = if penalty.is_finite() && penalty > 0.0 {
        penalty
    } else {
        0.0
    };
    let mut m = migration_demand.min(c0 / (1.0 + penalty).max(1.0));
    let mut w = workload_demand;
    for _ in 0..64 {
        let cap = (c0 - penalty * m).max(0.0);
        let (nw, nm) = share_two(cap, workload_demand, migration_demand);
        // Damping keeps the iteration from oscillating between regimes.
        let next_m = 0.5 * m + 0.5 * nm;
        if (next_m - m).abs() < 1e-6 && (nw - w).abs() < 1e-6 {
            m = next_m;
            w = nw;
            break;
        }
        m = next_m;
        w = nw;
    }
    (w, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn uncontended_demands_fully_served() {
        let a = max_min_share(100.0, &[30.0, 40.0]);
        assert!(close(a[0], 30.0) && close(a[1], 40.0));
    }

    #[test]
    fn contended_equal_split() {
        let (w, m) = share_two(100.0, 90.0, 110.0);
        assert!(close(w, 50.0) && close(m, 50.0));
    }

    #[test]
    fn small_demand_frees_capacity_for_big() {
        let (w, m) = share_two(100.0, 10.0, 1000.0);
        assert!(close(w, 10.0), "w = {w}");
        assert!(close(m, 90.0), "m = {m}");
    }

    #[test]
    fn three_way_max_min() {
        let a = max_min_share(90.0, &[10.0, 40.0, 100.0]);
        // 10 satisfied; remaining 80 split as 40 each.
        assert!(close(a[0], 10.0) && close(a[1], 40.0) && close(a[2], 40.0));
    }

    #[test]
    fn zero_demand_gets_zero() {
        let a = max_min_share(100.0, &[0.0, 50.0]);
        assert!(close(a[0], 0.0) && close(a[1], 50.0));
    }

    #[test]
    fn never_exceeds_capacity_or_demand() {
        let demands = [33.0, 7.0, 120.0, 0.5];
        let a = max_min_share(60.0, &demands);
        let total: f64 = a.iter().sum();
        assert!(total <= 60.0 + 1e-9);
        for (x, d) in a.iter().zip(&demands) {
            assert!(x <= d);
        }
    }

    #[test]
    fn empty_demands_ok() {
        assert!(max_min_share(10.0, &[]).is_empty());
    }

    #[test]
    fn degenerate_capacity_is_clamped_not_panicked() {
        // NaN / negative capacity: an unusable pool allocates nothing.
        for cap in [f64::NAN, -1.0, f64::NEG_INFINITY] {
            let a = max_min_share(cap, &[10.0, 20.0]);
            assert_eq!(a, vec![0.0, 0.0], "capacity {cap}");
        }
        // Infinite capacity: an uncontended pool serves every demand.
        let a = max_min_share(f64::INFINITY, &[10.0, 20.0]);
        assert!(close(a[0], 10.0) && close(a[1], 20.0));
    }

    #[test]
    fn degenerate_demands_get_zero() {
        let a = max_min_share(100.0, &[f64::NAN, -5.0, 30.0]);
        assert_eq!(a[0], 0.0);
        assert_eq!(a[1], 0.0);
        assert!(close(a[2], 30.0));
        // An infinite demand absorbs the slack but allocations stay
        // within capacity.
        let a = max_min_share(100.0, &[30.0, f64::INFINITY]);
        assert!(close(a[0], 30.0));
        assert!(a[1] <= 100.0 && a.iter().sum::<f64>() <= 100.0 + 1e-9);
    }

    #[test]
    fn seek_aware_degenerate_inputs_are_clamped() {
        let (w, m) = seek_aware_share(f64::NAN, 1.0, 50.0, 50.0);
        assert_eq!((w, m), (0.0, 0.0));
        let (w, m) = seek_aware_share(-10.0, 1.0, 50.0, 50.0);
        assert_eq!((w, m), (0.0, 0.0));
        // A NaN penalty degrades to no-interference sharing.
        let (w1, m1) = seek_aware_share(100.0, f64::NAN, 90.0, 110.0);
        let (w2, m2) = share_two(100.0, 90.0, 110.0);
        assert!((w1 - w2).abs() < 1e-3 && (m1 - m2).abs() < 1e-3);
    }

    #[test]
    fn seek_aware_share_reproduces_section_vi_c_3() {
        // Paper-calibrated constants: nominal streaming capacity
        // ~137.7 MB/s, ~1.2 MB/s of capacity lost per MB/s of interleaved
        // migration traffic.
        let c0 = 137.7;
        let pen = 1.2;
        // Unlimited migration (pipeline cap ~50 MB/s) against Bonnie++
        // (~96 MB/s demand): both converge near 43 MB/s.
        let (w_u, m_u) = seek_aware_share(c0, pen, 96.0, 50.0);
        assert!((40.0..46.0).contains(&m_u), "m {m_u}");
        assert!((40.0..47.0).contains(&w_u), "w {w_u}");
        // Rate-limited to 31 MB/s: the workload recovers about half of
        // what it lost, pre-copy stretches by ~38 %.
        let (w_l, m_l) = seek_aware_share(c0, pen, 96.0, 31.0);
        assert!((m_l - 31.0).abs() < 0.5, "m {m_l}");
        let recovery = (w_l - w_u) / (96.0 - w_u);
        assert!((0.35..0.65).contains(&recovery), "recovery {recovery}");
        let stretch = m_u / m_l;
        assert!((1.25..1.55).contains(&stretch), "stretch {stretch}");
        // A light workload (web server) leaves the migration unimpeded.
        let (w_web, m_web) = seek_aware_share(c0, pen, 2.1, 50.0);
        assert!((w_web - 2.1).abs() < 1e-6);
        assert!((m_web - 50.0).abs() < 0.5, "m {m_web}");
    }

    #[test]
    fn seek_aware_with_zero_penalty_matches_share_two() {
        let (w1, m1) = seek_aware_share(100.0, 0.0, 90.0, 110.0);
        let (w2, m2) = share_two(100.0, 90.0, 110.0);
        assert!((w1 - w2).abs() < 1e-3 && (m1 - m2).abs() < 1e-3);
    }

    #[test]
    fn figure6_shape_rate_limited_migration_helps_workload() {
        // Disk capacity 110 MB/s; Bonnie++ demands 95; unlimited migration
        // demands the link rate (119). Max-min: each side ~55.
        let (w_unlim, _) = share_two(110.0, 95.0, 119.0);
        // Rate-limited migration demands only 30 -> workload recovers.
        let (w_lim, m_lim) = share_two(110.0, 95.0, 30.0);
        assert!(w_unlim < 60.0);
        assert!(w_lim > 75.0);
        assert!(close(m_lim, 30.0));
        // The paper: limiting recovers roughly half the lost throughput.
        let recovered = (w_lim - w_unlim) / (95.0 - w_unlim);
        assert!(recovered > 0.5, "recovered fraction {recovered}");
    }
}
