//! Hand-rolled block compression for residual full-block sends:
//! run-length and LZ77-style back-references, no dependencies.
//!
//! A compressed block is a self-describing frame (DESIGN.md §15):
//!
//! ```text
//! [scheme: u8][payload_len: u32 LE][payload]
//! ```
//!
//! The encoder tries every scheme and keeps the smallest, so a frame is
//! never larger than `raw + HEADER` bytes (`SCHEME_RAW` carries the
//! block verbatim). The decoder needs nothing but the frame: `RLE`
//! payloads are `[run: u32 LE][byte]` pairs, `LZ` payloads are LZ4-like
//! sequences (token of literal/match nibbles with 255-chain extensions,
//! literals, 2-byte little-endian back-reference offset).
//!
//! The run scanner and the all-zero fast path compare eight bytes per
//! step, so compressing a pristine (zeroed) block costs about one read
//! pass — the `codec_lz_roundtrip` bench gates the round-trip against a
//! memcpy budget.
//!
//! This module sits on the transport receive path (lintkit
//! `no-panic-transport` zone): malformed frames surface as
//! [`CorruptFrame`], never as a panic.

use std::fmt;

/// Bytes of frame header in front of every compressed payload.
pub const HEADER: usize = 5;

/// Scheme byte: payload is the raw block.
pub const SCHEME_RAW: u8 = 0;
/// Scheme byte: payload is `[run: u32 LE][byte]` pairs.
pub const SCHEME_RLE: u8 = 1;
/// Scheme byte: payload is LZ77 sequences.
pub const SCHEME_LZ: u8 = 2;

const MIN_MATCH: usize = 4;
const HASH_LOG: u32 = 13;

/// A compressed frame failed validation during decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptFrame;

impl fmt::Display for CorruptFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt compressed block frame")
    }
}

impl std::error::Error for CorruptFrame {}

/// Compress one block, choosing the smallest of raw/RLE/LZ. The result
/// always includes the [`HEADER`] and is never longer than
/// `raw.len() + HEADER`.
pub fn compress_block(raw: &[u8]) -> Vec<u8> {
    let rle = rle_compress(raw);
    let lz = lz_compress(raw);
    let (scheme, payload) = match (rle, lz) {
        (Some(r), Some(l)) if l.len() < r.len() => (SCHEME_LZ, l),
        (Some(r), _) => (SCHEME_RLE, r),
        (None, Some(l)) => (SCHEME_LZ, l),
        (None, None) => (SCHEME_RAW, Vec::new()),
    };
    let body: &[u8] = if scheme == SCHEME_RAW { raw } else { &payload };
    let mut out = Vec::with_capacity(HEADER + body.len());
    out.push(scheme);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Decode one frame produced by [`compress_block`]. `max_out` bounds
/// the decompressed size (callers pass the negotiated block size), so a
/// corrupt frame cannot balloon memory.
///
/// Returns the decompressed bytes and the total frame length consumed.
pub fn decompress_block(frame: &[u8], max_out: usize) -> Result<(Vec<u8>, usize), CorruptFrame> {
    let (&scheme, rest) = frame.split_first().ok_or(CorruptFrame)?;
    let len_bytes = rest.get(..4).ok_or(CorruptFrame)?;
    let plen =
        u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
    let payload = rest.get(4..4 + plen).ok_or(CorruptFrame)?;
    let out = match scheme {
        SCHEME_RAW => {
            if payload.len() > max_out {
                return Err(CorruptFrame);
            }
            payload.to_vec()
        }
        SCHEME_RLE => rle_decompress(payload, max_out)?,
        SCHEME_LZ => lz_decompress(payload, max_out)?,
        _ => return Err(CorruptFrame),
    };
    Ok((out, HEADER + plen))
}

/// Run-length encode; `None` when the result would not beat raw.
fn rle_compress(src: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < src.len() {
        let b = src[i];
        let pat = [b; 8];
        let mut j = i + 1;
        // Word-batched run scan: compare eight bytes per step.
        while j + 8 <= src.len() && src[j..j + 8] == pat {
            j += 8;
        }
        while j < src.len() && src[j] == b {
            j += 1;
        }
        out.extend_from_slice(&((j - i) as u32).to_le_bytes());
        out.push(b);
        if out.len() >= src.len() {
            return None;
        }
        i = j;
    }
    Some(out)
}

fn rle_decompress(src: &[u8], max_out: usize) -> Result<Vec<u8>, CorruptFrame> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < src.len() {
        let pair = src.get(pos..pos + 5).ok_or(CorruptFrame)?;
        let run = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
        if run == 0 || out.len() + run > max_out {
            return Err(CorruptFrame);
        }
        out.resize(out.len() + run, pair[4]);
        pos += 5;
    }
    Ok(out)
}

/// 255-chain length extension (LZ4 style).
fn push_len(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn read_len(src: &[u8], pos: &mut usize) -> Result<usize, CorruptFrame> {
    let mut total = 0usize;
    loop {
        let &b = src.get(*pos).ok_or(CorruptFrame)?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

/// Greedy LZ77 with a 4-byte hash table and 16-bit offsets; `None`
/// when the input is tiny or the result would not beat raw.
fn lz_compress(src: &[u8]) -> Option<Vec<u8>> {
    if src.len() < MIN_MATCH + 4 {
        return None;
    }
    // Size the table to the input: small disk blocks get a small table
    // (less zeroing per call), large inputs keep the full hash space.
    let hash_log = HASH_LOG.min(usize::BITS - src.len().leading_zeros());
    let mut table = vec![0u32; 1usize << hash_log];
    let mut out = Vec::with_capacity(src.len() / 2);
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= src.len() {
        let seq = u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]);
        let h = (seq.wrapping_mul(0x9E37_79B1) >> (32 - hash_log)) as usize;
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        if cand > 0 {
            let c = cand - 1;
            let off = i - c;
            if off > 0
                && off <= usize::from(u16::MAX)
                && src[c..c + MIN_MATCH] == src[i..i + MIN_MATCH]
            {
                let mut mlen = MIN_MATCH;
                while i + mlen < src.len() && src[c + mlen] == src[i + mlen] {
                    mlen += 1;
                }
                let lits = &src[anchor..i];
                let mext = mlen - MIN_MATCH;
                out.push(((lits.len().min(15) as u8) << 4) | mext.min(15) as u8);
                if lits.len() >= 15 {
                    push_len(&mut out, lits.len() - 15);
                }
                out.extend_from_slice(lits);
                out.extend_from_slice(&(off as u16).to_le_bytes());
                if mext >= 15 {
                    push_len(&mut out, mext - 15);
                }
                if out.len() + 1 >= src.len() {
                    return None;
                }
                i += mlen;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    // Final literal-only sequence (possibly empty).
    let lits = &src[anchor..];
    out.push((lits.len().min(15) as u8) << 4);
    if lits.len() >= 15 {
        push_len(&mut out, lits.len() - 15);
    }
    out.extend_from_slice(lits);
    if out.len() >= src.len() {
        None
    } else {
        Some(out)
    }
}

fn lz_decompress(src: &[u8], max_out: usize) -> Result<Vec<u8>, CorruptFrame> {
    let mut out: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    while pos < src.len() {
        let &token = src.get(pos).ok_or(CorruptFrame)?;
        pos += 1;
        let mut lits = (token >> 4) as usize;
        if lits == 15 {
            lits += read_len(src, &mut pos)?;
        }
        let lit_bytes = src.get(pos..pos + lits).ok_or(CorruptFrame)?;
        if out.len() + lits > max_out {
            return Err(CorruptFrame);
        }
        out.extend_from_slice(lit_bytes);
        pos += lits;
        if pos == src.len() {
            break;
        }
        let off_bytes = src.get(pos..pos + 2).ok_or(CorruptFrame)?;
        let off = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
        pos += 2;
        let mut mlen = (token & 0x0F) as usize;
        if mlen == 15 {
            mlen += read_len(src, &mut pos)?;
        }
        mlen += MIN_MATCH;
        if off == 0 || off > out.len() || out.len() + mlen > max_out {
            return Err(CorruptFrame);
        }
        let start = out.len() - off;
        // Overlapping copy (off < mlen repeats the pattern), byte loop
        // on purpose: the destination grows as we copy.
        for k in 0..mlen {
            let Some(&b) = out.get(start + k) else {
                return Err(CorruptFrame);
            };
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], bs: usize) {
        let frame = compress_block(data);
        assert!(
            frame.len() <= data.len() + HEADER,
            "bound violated: {}",
            frame.len()
        );
        let (back, used) = decompress_block(&frame, bs).expect("frame decodes");
        assert_eq!(used, frame.len());
        assert_eq!(back, data);
    }

    #[test]
    fn zero_block_collapses() {
        let data = vec![0u8; 4096];
        let frame = compress_block(&data);
        assert_eq!(frame[0], SCHEME_RLE);
        assert!(
            frame.len() <= 16,
            "zero block frame was {} bytes",
            frame.len()
        );
        roundtrip(&data, 4096);
    }

    #[test]
    fn repetitive_data_uses_lz_or_rle() {
        let mut data = Vec::new();
        while data.len() < 4096 {
            data.extend_from_slice(b"the same sixteen!");
        }
        data.truncate(4096);
        let frame = compress_block(&data);
        assert!(
            frame.len() < data.len() / 4,
            "compressible data stayed {} bytes",
            frame.len()
        );
        roundtrip(&data, 4096);
    }

    #[test]
    fn incompressible_data_stays_raw_within_bound() {
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let frame = compress_block(&data);
        assert_eq!(frame[0], SCHEME_RAW);
        assert_eq!(frame.len(), data.len() + HEADER);
        roundtrip(&data, 4096);
    }

    #[test]
    fn tiny_and_empty_blocks() {
        roundtrip(&[], 4096);
        roundtrip(&[7], 4096);
        roundtrip(&[1, 2, 3, 4, 5, 6, 7], 4096);
    }

    #[test]
    fn property_roundtrip_arbitrary_bytes_within_bound() {
        // Hand-rolled property test (no proptest dep): 300 xorshift-
        // driven blocks mixing pure noise (incompressible — must stay
        // within raw + HEADER), byte runs, and repeated motifs. The
        // `roundtrip` helper asserts both the size bound and bit-exact
        // recovery.
        let mut x = 0x853C_49E6_748F_EA9Bu64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..300 {
            let len = (next() % 4500) as usize;
            let mut data = Vec::with_capacity(len);
            match case % 3 {
                // Incompressible noise.
                0 => data.extend((0..len).map(|_| next() as u8)),
                // Byte runs of arbitrary length.
                1 => {
                    while data.len() < len {
                        let run = 1 + (next() % 300) as usize;
                        let byte = next() as u8;
                        let n = run.min(len - data.len());
                        data.extend(std::iter::repeat_n(byte, n));
                    }
                }
                // A short motif repeated — LZ back-reference shape.
                _ => {
                    let motif: Vec<u8> = (0..1 + (next() % 23) as usize)
                        .map(|_| next() as u8)
                        .collect();
                    while data.len() < len {
                        let n = motif.len().min(len - data.len());
                        data.extend_from_slice(&motif[..n]);
                    }
                }
            }
            roundtrip(&data, 4500);
        }
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        assert_eq!(decompress_block(&[], 4096), Err(CorruptFrame));
        assert_eq!(decompress_block(&[9, 0, 0, 0, 0], 4096), Err(CorruptFrame));
        // Truncated payload length.
        assert_eq!(
            decompress_block(&[SCHEME_LZ, 10, 0, 0, 0, 1], 4096),
            Err(CorruptFrame)
        );
        // RLE run overflowing the block size.
        let mut f = vec![SCHEME_RLE, 5, 0, 0, 0];
        f.extend_from_slice(&9000u32.to_le_bytes());
        f.push(0);
        assert_eq!(decompress_block(&f, 4096), Err(CorruptFrame));
        // A frame the compressor produced, bit-flipped scheme.
        let mut frame = compress_block(&vec![3u8; 4096]);
        frame[0] = 7;
        assert_eq!(decompress_block(&frame, 4096), Err(CorruptFrame));
    }
}
