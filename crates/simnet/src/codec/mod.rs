//! Binary wire codec for [`MigMessage`].
//!
//! The in-process transports pass messages by value; crossing a real
//! socket needs bytes. The encoding is a simple tagged binary format with
//! length-prefixed framing ([`write_frame`] / [`read_frame`]) — little
//! endian throughout, payloads inline.

use std::io::{Read, Write};

use bytes::Bytes;

use crate::proto::MigMessage;

pub mod lz;

/// Maximum accepted frame size (guards against corrupt length prefixes):
/// generous enough for a 4096-block batch of 4 KiB blocks.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Errors from decoding a wire frame.
#[derive(Debug)]
pub enum CodecError {
    /// Frame shorter than its own header, unknown tag, or bad lengths.
    Malformed(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The peer closed the stream on a frame boundary. Surfaced by
    /// [`read_frame`] so callers that treat any EOF as an error still get
    /// a typed value instead of a synthesized `UnexpectedEof`; callers
    /// that want to treat a clean close as end-of-session should prefer
    /// [`read_frame_or_eof`].
    CleanEof,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(m) => write!(f, "malformed frame: {m}"),
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::CleanEof => write!(f, "stream closed on a frame boundary"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

const T_PREPARE: u8 = 1;
const T_PREPARE_ACK: u8 = 2;
const T_DISK_BLOCKS: u8 = 3;
const T_MEM_PAGES: u8 = 4;
const T_CPU: u8 = 5;
const T_BITMAP: u8 = 6;
const T_SUSPENDED: u8 = 7;
const T_RESUMED: u8 = 8;
const T_PULL: u8 = 9;
const T_PC_BLOCK: u8 = 10;
const T_PUSH_COMPLETE: u8 = 11;
const T_COMPLETE: u8 = 12;
const T_COMPLETE_ACK: u8 = 13;
const T_HELLO: u8 = 14;
const T_RESUME_FROM: u8 = 15;
const T_BLOCK_REF: u8 = 16;
const T_BLOCK_REF_MISS: u8 = 17;
const T_CONTENT_SUMMARY: u8 = 18;
const T_COMPRESSED_BLOCKS: u8 = 19;
const T_BLOCK_REQUEST: u8 = 20;
const T_BLOCK_DATA: u8 = 21;
const T_BLOCK_MISS: u8 = 22;
const T_BLOCK_MANIFEST: u8 = 23;

/// Words converted per batch in the bulk [`Writer::u64s`] path: large
/// enough for the inner loop to vectorize, small enough to live on the
/// stack.
const BULK_WORDS: usize = 32;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.reserve(8 + b.len());
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
    fn u64s(&mut self, v: &[u64]) {
        // One reserve up front, then batched word→byte conversion: a
        // per-element `extend_from_slice` re-checks capacity on every
        // word, which dominates encode time for bitmap-scale runs.
        self.buf.reserve(8 + v.len() * 8);
        self.u64(v.len() as u64);
        let mut chunk = [0u8; BULK_WORDS * 8];
        for words in v.chunks(BULK_WORDS) {
            for (slot, w) in chunk.chunks_exact_mut(8).zip(words) {
                slot.copy_from_slice(&w.to_le_bytes());
            }
            self.buf.extend_from_slice(&chunk[..words.len() * 8]);
        }
    }
    fn opt_bytes(&mut self, b: &Option<Bytes>) {
        match b {
            Some(b) => {
                self.u8(1);
                self.bytes(b);
            }
            None => self.u8(0),
        }
    }
    /// Append one raw block as a self-describing compressed frame
    /// (smallest of raw/RLE/LZ — see [`lz::compress_block`]).
    fn compressed_block(&mut self, raw: &[u8]) {
        let frame = lz::compress_block(raw);
        self.buf.extend_from_slice(&frame);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Malformed(format!(
                "need {n} bytes at offset {}, frame is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        match *self.take(4)? {
            [a, b, c, d] => Ok(u32::from_le_bytes([a, b, c, d])),
            _ => Err(CodecError::Malformed("short u32".into())),
        }
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        match *self.take(8)? {
            [a, b, c, d, e, f, g, h] => Ok(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
            _ => Err(CodecError::Malformed("short u64".into())),
        }
    }
    fn bytes(&mut self) -> Result<Bytes, CodecError> {
        let n = self.u64()? as usize;
        if n > MAX_FRAME as usize {
            return Err(CodecError::Malformed(format!("byte run of {n}")));
        }
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }
    fn u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.u64()? as usize;
        if n > MAX_FRAME as usize / 8 {
            return Err(CodecError::Malformed(format!("u64 run of {n}")));
        }
        // Bounds-check the whole run once, then convert in place: the
        // per-element `u64()` path pays a length check per word.
        let raw = self.take(n * 8)?;
        let mut out = Vec::with_capacity(n);
        for c in raw.chunks_exact(8) {
            out.push(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]));
        }
        Ok(out)
    }
    fn flag(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Malformed(format!("bool tag {other}"))),
        }
    }
    fn opt_bytes(&mut self) -> Result<Option<Bytes>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            other => Err(CodecError::Malformed(format!("option tag {other}"))),
        }
    }
    /// Decode one self-describing compressed block frame in place.
    /// `max_out` bounds the decompressed size (the negotiated block
    /// size); a corrupt frame is a typed [`CodecError::Malformed`].
    fn compressed_block(&mut self, max_out: usize) -> Result<Vec<u8>, CodecError> {
        let rest = self.buf.get(self.pos..).unwrap_or(&[]);
        let (out, used) = lz::decompress_block(rest, max_out)
            .map_err(|e| CodecError::Malformed(e.to_string()))?;
        self.pos += used;
        Ok(out)
    }
    fn finish(self) -> Result<(), CodecError> {
        if self.pos != self.buf.len() {
            return Err(CodecError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Compress a concatenation of equal-sized raw blocks into the payload
/// of a [`MigMessage::CompressedBlocks`]: one self-describing frame per
/// block, never more than `raw.len() + blocks * lz::HEADER` bytes.
pub fn compress_blocks(raw: &[u8], block_size: usize) -> Vec<u8> {
    if block_size == 0 {
        return Vec::new();
    }
    let mut w = Writer {
        buf: Vec::with_capacity(raw.len() / 2 + lz::HEADER),
    };
    for b in raw.chunks(block_size) {
        w.compressed_block(b);
    }
    w.buf
}

/// Decode a [`MigMessage::CompressedBlocks`] payload of `count` frames
/// back into concatenated raw blocks. Rejects trailing bytes and any
/// frame decompressing past `block_size`.
pub fn decompress_blocks(
    payload: &[u8],
    count: usize,
    block_size: usize,
) -> Result<Vec<u8>, CodecError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let mut out = Vec::with_capacity(count * block_size);
    for _ in 0..count {
        out.extend_from_slice(&r.compressed_block(block_size)?);
    }
    r.finish()?;
    Ok(out)
}

/// Encode a message to its wire bytes (without the outer length prefix).
pub fn encode(msg: &MigMessage) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(body_size_hint(msg)),
    };
    encode_body(&mut w, msg);
    w.buf
}

/// Encode a message as one contiguous length-prefixed frame: the 4-byte
/// LE prefix and the body share a single allocation, so the transport
/// can hand the whole frame to the OS in one write.
///
/// # Panics
/// Panics when the encoded body exceeds [`MAX_FRAME`].
pub fn encode_framed(msg: &MigMessage) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(4 + body_size_hint(msg)),
    };
    w.buf.extend_from_slice(&[0u8; 4]);
    encode_body(&mut w, msg);
    let body_len = w.buf.len() - 4;
    assert!(body_len <= MAX_FRAME as usize, "frame too large");
    w.buf[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    w.buf
}

/// Close-enough capacity estimate for a message's encoded body, so the
/// encoder allocates once. Payload bytes dominate real frames; the fixed
/// slack covers tags and lengths for every variant.
fn body_size_hint(msg: &MigMessage) -> usize {
    let variable = match msg {
        MigMessage::DiskBlocks {
            blocks, payload, ..
        } => blocks.len() * 8 + payload.as_ref().map_or(0, Bytes::len),
        MigMessage::MemPages { pages, payload, .. } => {
            pages.len() * 8 + payload.as_ref().map_or(0, Bytes::len)
        }
        MigMessage::CpuState { payload, .. } => payload.as_ref().map_or(0, Bytes::len),
        MigMessage::Bitmap { encoded } => encoded.len(),
        MigMessage::PostCopyBlock { payload, .. } => payload.as_ref().map_or(0, Bytes::len),
        MigMessage::BlockData { payload, .. } => payload.as_ref().map_or(0, Bytes::len),
        MigMessage::ResumeFrom {
            disk_bitmap,
            mem_bitmap,
            ..
        } => disk_bitmap.len() + mem_bitmap.len(),
        MigMessage::ContentSummary { fingerprints } => fingerprints.len() * 8,
        MigMessage::BlockManifest {
            blocks,
            fingerprints,
        } => (blocks.len() + fingerprints.len()) * 8,
        MigMessage::CompressedBlocks {
            blocks, payload, ..
        } => blocks.len() * 8 + payload.len(),
        MigMessage::PrepareVbd { .. }
        | MigMessage::PrepareAck
        | MigMessage::Suspended
        | MigMessage::Resumed
        | MigMessage::PullRequest { .. }
        | MigMessage::PushComplete
        | MigMessage::MigrationComplete
        | MigMessage::CompleteAck
        | MigMessage::SessionHello { .. }
        | MigMessage::BlockRef { .. }
        | MigMessage::BlockRefMiss { .. }
        | MigMessage::BlockRequest { .. }
        | MigMessage::BlockMiss { .. } => 0,
    };
    variable + 64
}

fn encode_body(w: &mut Writer, msg: &MigMessage) {
    match msg {
        MigMessage::PrepareVbd {
            block_size,
            num_blocks,
        } => {
            w.u8(T_PREPARE);
            w.u32(*block_size);
            w.u64(*num_blocks);
        }
        MigMessage::PrepareAck => w.u8(T_PREPARE_ACK),
        MigMessage::DiskBlocks {
            blocks,
            payload_len,
            payload,
        } => {
            w.u8(T_DISK_BLOCKS);
            w.u64s(blocks);
            w.u64(*payload_len);
            w.opt_bytes(payload);
        }
        MigMessage::MemPages {
            pages,
            payload_len,
            payload,
        } => {
            w.u8(T_MEM_PAGES);
            w.u64s(pages);
            w.u64(*payload_len);
            w.opt_bytes(payload);
        }
        MigMessage::CpuState {
            payload_len,
            payload,
        } => {
            w.u8(T_CPU);
            w.u64(*payload_len);
            w.opt_bytes(payload);
        }
        MigMessage::Bitmap { encoded } => {
            w.u8(T_BITMAP);
            w.bytes(encoded);
        }
        MigMessage::Suspended => w.u8(T_SUSPENDED),
        MigMessage::Resumed => w.u8(T_RESUMED),
        MigMessage::PullRequest { block } => {
            w.u8(T_PULL);
            w.u64(*block);
        }
        MigMessage::PostCopyBlock {
            block,
            pulled,
            payload_len,
            payload,
        } => {
            w.u8(T_PC_BLOCK);
            w.u64(*block);
            w.u8(u8::from(*pulled));
            w.u64(*payload_len);
            w.opt_bytes(payload);
        }
        MigMessage::PushComplete => w.u8(T_PUSH_COMPLETE),
        MigMessage::MigrationComplete => w.u8(T_COMPLETE),
        MigMessage::CompleteAck => w.u8(T_COMPLETE_ACK),
        MigMessage::SessionHello {
            session_id,
            attempt,
            dedup,
            compress,
        } => {
            w.u8(T_HELLO);
            w.u64(*session_id);
            w.u32(*attempt);
            w.u8(u8::from(*dedup));
            w.u8(u8::from(*compress));
        }
        MigMessage::ResumeFrom {
            phase,
            dedup,
            compress,
            disk_bitmap,
            mem_bitmap,
        } => {
            w.u8(T_RESUME_FROM);
            w.u8(phase.to_u8());
            w.u8(u8::from(*dedup));
            w.u8(u8::from(*compress));
            w.bytes(disk_bitmap);
            w.bytes(mem_bitmap);
        }
        MigMessage::BlockRef { block, fingerprint } => {
            w.u8(T_BLOCK_REF);
            w.u64(*block);
            w.u64(*fingerprint);
        }
        MigMessage::BlockRefMiss { block } => {
            w.u8(T_BLOCK_REF_MISS);
            w.u64(*block);
        }
        MigMessage::ContentSummary { fingerprints } => {
            w.u8(T_CONTENT_SUMMARY);
            w.u64s(fingerprints);
        }
        MigMessage::CompressedBlocks {
            blocks,
            raw_len,
            payload,
        } => {
            w.u8(T_COMPRESSED_BLOCKS);
            w.u64s(blocks);
            w.u64(*raw_len);
            w.bytes(payload);
        }
        MigMessage::BlockRequest {
            block,
            fingerprint,
            generation,
        } => {
            w.u8(T_BLOCK_REQUEST);
            w.u64(*block);
            w.u64(*fingerprint);
            w.u64(*generation);
        }
        MigMessage::BlockData {
            block,
            generation,
            payload_len,
            payload,
        } => {
            w.u8(T_BLOCK_DATA);
            w.u64(*block);
            w.u64(*generation);
            w.u64(*payload_len);
            w.opt_bytes(payload);
        }
        MigMessage::BlockMiss { block } => {
            w.u8(T_BLOCK_MISS);
            w.u64(*block);
        }
        MigMessage::BlockManifest {
            blocks,
            fingerprints,
        } => {
            w.u8(T_BLOCK_MANIFEST);
            w.u64s(blocks);
            w.u64s(fingerprints);
        }
    }
}

/// Decode a message from its wire bytes.
pub fn decode(buf: &[u8]) -> Result<MigMessage, CodecError> {
    let mut r = Reader { buf, pos: 0 };
    let msg = match r.u8()? {
        T_PREPARE => MigMessage::PrepareVbd {
            block_size: r.u32()?,
            num_blocks: r.u64()?,
        },
        T_PREPARE_ACK => MigMessage::PrepareAck,
        T_DISK_BLOCKS => MigMessage::DiskBlocks {
            blocks: r.u64s()?,
            payload_len: r.u64()?,
            payload: r.opt_bytes()?,
        },
        T_MEM_PAGES => MigMessage::MemPages {
            pages: r.u64s()?,
            payload_len: r.u64()?,
            payload: r.opt_bytes()?,
        },
        T_CPU => MigMessage::CpuState {
            payload_len: r.u64()?,
            payload: r.opt_bytes()?,
        },
        T_BITMAP => MigMessage::Bitmap {
            encoded: r.bytes()?,
        },
        T_SUSPENDED => MigMessage::Suspended,
        T_RESUMED => MigMessage::Resumed,
        T_PULL => MigMessage::PullRequest { block: r.u64()? },
        T_PC_BLOCK => MigMessage::PostCopyBlock {
            block: r.u64()?,
            pulled: match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(CodecError::Malformed(format!("bool tag {other}")));
                }
            },
            payload_len: r.u64()?,
            payload: r.opt_bytes()?,
        },
        T_PUSH_COMPLETE => MigMessage::PushComplete,
        T_COMPLETE => MigMessage::MigrationComplete,
        T_COMPLETE_ACK => MigMessage::CompleteAck,
        T_HELLO => MigMessage::SessionHello {
            session_id: r.u64()?,
            attempt: r.u32()?,
            dedup: r.flag()?,
            compress: r.flag()?,
        },
        T_RESUME_FROM => MigMessage::ResumeFrom {
            phase: {
                let raw = r.u8()?;
                crate::proto::ResumePhase::from_u8(raw)
                    .ok_or_else(|| CodecError::Malformed(format!("resume phase {raw}")))?
            },
            dedup: r.flag()?,
            compress: r.flag()?,
            disk_bitmap: r.bytes()?,
            mem_bitmap: r.bytes()?,
        },
        T_BLOCK_REF => MigMessage::BlockRef {
            block: r.u64()?,
            fingerprint: r.u64()?,
        },
        T_BLOCK_REF_MISS => MigMessage::BlockRefMiss { block: r.u64()? },
        T_CONTENT_SUMMARY => MigMessage::ContentSummary {
            fingerprints: r.u64s()?,
        },
        T_COMPRESSED_BLOCKS => MigMessage::CompressedBlocks {
            blocks: r.u64s()?,
            raw_len: r.u64()?,
            payload: r.bytes()?,
        },
        T_BLOCK_REQUEST => MigMessage::BlockRequest {
            block: r.u64()?,
            fingerprint: r.u64()?,
            generation: r.u64()?,
        },
        T_BLOCK_DATA => MigMessage::BlockData {
            block: r.u64()?,
            generation: r.u64()?,
            payload_len: r.u64()?,
            payload: r.opt_bytes()?,
        },
        T_BLOCK_MISS => MigMessage::BlockMiss { block: r.u64()? },
        T_BLOCK_MANIFEST => MigMessage::BlockManifest {
            blocks: r.u64s()?,
            fingerprints: r.u64s()?,
        },
        other => return Err(CodecError::Malformed(format!("unknown tag {other}"))),
    };
    r.finish()?;
    Ok(msg)
}

/// Write one length-prefixed frame to a stream as a single contiguous
/// write — prefix and body never split across `write_all` calls, so an
/// unbuffered TCP stream issues one syscall per frame.
///
/// # Panics
/// Panics when the encoded body exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, msg: &MigMessage) -> Result<(), CodecError> {
    let frame = encode_framed(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame from a stream. A peer that closes on a
/// frame boundary surfaces as the typed [`CodecError::CleanEof`]; use
/// [`read_frame_or_eof`] to treat that close as a normal end-of-session.
pub fn read_frame(r: &mut impl Read) -> Result<MigMessage, CodecError> {
    match read_frame_or_eof(r)? {
        Some(msg) => Ok(msg),
        None => Err(CodecError::CleanEof),
    }
}

/// Read one frame, distinguishing a clean shutdown from a broken stream:
/// returns `Ok(None)` when EOF falls exactly on a frame boundary (the peer
/// closed between messages), and an error when the stream dies with a
/// partially delivered frame (truncation, reset, I/O failure).
pub fn read_frame_or_eof(r: &mut impl Read) -> Result<Option<MigMessage>, CodecError> {
    let mut len = [0u8; 4];
    // Read the length prefix byte-wise so EOF before the first byte is
    // distinguishable from EOF inside the prefix.
    let mut got = 0usize;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(CodecError::Malformed(format!(
                    "eof after {got} bytes of a frame length prefix"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(CodecError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(CodecError::Malformed(format!("frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::Malformed(format!("frame truncated short of {len} bytes"))
        } else {
            CodecError::Io(e)
        }
    })?;
    decode(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<MigMessage> {
        vec![
            MigMessage::PrepareVbd {
                block_size: 4096,
                num_blocks: 1 << 20,
            },
            MigMessage::PrepareAck,
            MigMessage::DiskBlocks {
                blocks: vec![1, 5, 9],
                payload_len: 3 * 4096,
                payload: Some(Bytes::from(vec![7u8; 3 * 4096])),
            },
            MigMessage::DiskBlocks {
                blocks: vec![],
                payload_len: 0,
                payload: None,
            },
            MigMessage::MemPages {
                pages: vec![42],
                payload_len: 4096,
                payload: None,
            },
            MigMessage::CpuState {
                payload_len: 8192,
                payload: Some(Bytes::from(vec![1u8; 16])),
            },
            MigMessage::Bitmap {
                encoded: Bytes::from(vec![0u8; 17]),
            },
            MigMessage::Suspended,
            MigMessage::Resumed,
            MigMessage::PullRequest { block: 12345 },
            MigMessage::PostCopyBlock {
                block: 77,
                pulled: true,
                payload_len: 512,
                payload: Some(Bytes::from(vec![3u8; 512])),
            },
            MigMessage::PushComplete,
            MigMessage::MigrationComplete,
            MigMessage::CompleteAck,
            MigMessage::SessionHello {
                session_id: 0xDEAD_BEEF_CAFE,
                attempt: 3,
                dedup: true,
                compress: false,
            },
            MigMessage::ResumeFrom {
                phase: crate::proto::ResumePhase::PostCopy,
                dedup: false,
                compress: true,
                disk_bitmap: Bytes::from(vec![5u8; 33]),
                mem_bitmap: Bytes::from(vec![]),
            },
            MigMessage::BlockRef {
                block: 4242,
                fingerprint: 0x0123_4567_89AB_CDEF,
            },
            MigMessage::BlockRefMiss { block: 4242 },
            MigMessage::ContentSummary {
                fingerprints: (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
            },
            MigMessage::CompressedBlocks {
                blocks: vec![3, 8, 11],
                raw_len: 3 * 4096,
                payload: Bytes::from(compress_blocks(&vec![9u8; 3 * 4096], 4096)),
            },
            MigMessage::BlockRequest {
                block: 991,
                fingerprint: 0xFEED_FACE_0123,
                generation: 7,
            },
            MigMessage::BlockData {
                block: 991,
                generation: 7,
                payload_len: 4096,
                payload: Some(Bytes::from(vec![11u8; 4096])),
            },
            MigMessage::BlockData {
                block: 992,
                generation: 0,
                payload_len: 4096,
                payload: None,
            },
            MigMessage::BlockMiss { block: 991 },
            MigMessage::BlockManifest {
                blocks: vec![5, 17, 4095],
                fingerprints: vec![0xAAAA, 0xBBBB, 0xCCCC],
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for msg in all_messages() {
            let enc = encode(&msg);
            let back = decode(&enc).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn framing_roundtrips_over_a_stream() {
        let mut wire = Vec::new();
        for msg in all_messages() {
            write_frame(&mut wire, &msg).expect("write");
        }
        let mut cursor = std::io::Cursor::new(wire);
        for expected in all_messages() {
            let got = read_frame(&mut cursor).expect("read");
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[99]).is_err());
        // Truncated DiskBlocks.
        let enc = encode(&MigMessage::PullRequest { block: 1 });
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        // Trailing junk.
        let mut enc = encode(&MigMessage::Suspended);
        enc.push(0);
        assert!(decode(&enc).is_err());
        // Bad option tag.
        let mut enc = encode(&MigMessage::CpuState {
            payload_len: 1,
            payload: None,
        });
        let n = enc.len();
        enc[n - 1] = 9;
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn clean_eof_distinguished_from_truncation() {
        // EOF on a frame boundary: clean shutdown.
        let mut wire = Vec::new();
        write_frame(&mut wire, &MigMessage::Suspended).expect("write");
        let mut cursor = std::io::Cursor::new(wire.clone());
        assert_eq!(
            read_frame_or_eof(&mut cursor).expect("frame"),
            Some(MigMessage::Suspended)
        );
        assert_eq!(read_frame_or_eof(&mut cursor).expect("clean eof"), None);

        // EOF inside the length prefix: truncation.
        let mut cursor = std::io::Cursor::new(wire[..2].to_vec());
        assert!(matches!(
            read_frame_or_eof(&mut cursor),
            Err(CodecError::Malformed(_))
        ));

        // EOF inside the body: truncation.
        let mut cursor = std::io::Cursor::new(wire[..wire.len() - 1].to_vec());
        assert!(matches!(
            read_frame_or_eof(&mut cursor),
            Err(CodecError::Malformed(_))
        ));

        // The plain reader maps clean EOF to the typed variant.
        let mut cursor = std::io::Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut cursor), Err(CodecError::CleanEof)));
    }

    #[test]
    fn framed_encoding_is_prefix_plus_body() {
        for msg in all_messages() {
            let body = encode(&msg);
            let framed = encode_framed(&msg);
            assert_eq!(&framed[..4], (body.len() as u32).to_le_bytes());
            assert_eq!(&framed[4..], &body[..]);
        }
    }

    #[test]
    fn bulk_u64_runs_roundtrip_across_chunk_boundaries() {
        // Lengths straddling the bulk-conversion chunk size, including a
        // bitmap-scale run, must decode to exactly what was encoded.
        for n in [0usize, 1, 31, 32, 33, 63, 64, 65, 100_000] {
            let blocks: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let msg = MigMessage::DiskBlocks {
                blocks,
                payload_len: 0,
                payload: None,
            };
            let back = decode(&encode(&msg)).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(back, msg, "n={n}");
        }
    }

    #[test]
    fn compressed_batch_roundtrips_per_block() {
        let bs = 512usize;
        let mut raw = Vec::new();
        raw.extend_from_slice(&vec![0u8; bs]); // pristine block
        raw.extend_from_slice(&vec![0xAAu8; bs]); // run block
        let mut noise = Vec::with_capacity(bs);
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..bs {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            noise.push(x as u8);
        }
        raw.extend_from_slice(&noise); // incompressible block
        let payload = compress_blocks(&raw, bs);
        assert!(payload.len() <= raw.len() + 3 * lz::HEADER);
        assert!(payload.len() < raw.len(), "two of three blocks compress");
        let back = decompress_blocks(&payload, 3, bs).expect("payload decodes");
        assert_eq!(back, raw);
        // Corrupting the payload surfaces as a typed error.
        let mut bad = payload.clone();
        bad[0] = 9;
        assert!(decompress_blocks(&bad, 3, bs).is_err());
        // Wrong frame count is a typed error, not a panic.
        assert!(decompress_blocks(&payload, 2, bs).is_err());
    }

    #[test]
    fn read_frame_rejects_oversized_length() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&[0; 8]);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(CodecError::Malformed(_))
        ));
    }
}
