//! Deterministic fault injection for migration transports.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and severs, stalls or
//! truncates the link at precise, reproducible points — message offsets,
//! byte offsets, or per-category message counts. A wrapped *pair* shares
//! one cut flag, so a fault fired by the sender is observed by both sides
//! as [`TransportError::Reset`], exactly like a real connection reset:
//! the reconnect-and-resume path in `migrate::live` is exercised against
//! the same error surface a dead TCP stream produces.
//!
//! Faults are armed per connection *attempt* (0 = the initial
//! connection), so a plan can cut the first connection during disk
//! pre-copy, cut the second during post-copy, and leave the third alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use telemetry::{Event, FaultLabel, Recorder, Side};

use crate::proto::{Category, MigMessage, TransferLedger, ALL_CATEGORIES};
use crate::transport::{Transport, TransportError};

/// What happens when a fault's trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Sever the connection. The triggering send fails immediately with
    /// [`TransportError::Reset`] and every later operation on either side
    /// fails too.
    Reset,
    /// Freeze the sending side for the duration, then deliver normally.
    Stall(Duration),
    /// Deliver a truncated frame: the triggering send *appears* to
    /// succeed (like a write into a socket buffer that never drains), but
    /// the message is lost and the connection is severed behind it — the
    /// peer sees a frame cut short, i.e. `Reset`, on its next receive.
    Truncate,
    /// Lose the frame in flight but keep the connection alive: the send
    /// appears to succeed, the peer simply never receives the message.
    /// This is a lossy link (WAN weather, congestion drops), not a cut
    /// one — later frames go through untouched.
    Drop,
}

/// When a fault fires, measured on the side holding the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// After this many messages have been sent on this connection.
    Messages(u64),
    /// After this many wire bytes have been sent on this connection.
    Bytes(u64),
    /// After this many messages of the given category — e.g.
    /// `(Category::DiskPush, 5)` fires mid-post-copy regardless of how
    /// long the earlier phases ran.
    CategoryMessages(Category, u64),
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Connection attempt this fault arms on (0 = initial connection).
    pub attempt: u32,
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub kind: FaultKind,
}

/// A permanent kill of one named peer session: every connection attempt
/// of that session is reset after `after_messages` sends — modeling a
/// host that died, not a link that flapped. A killed session can never
/// ride out its reconnect budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKill {
    /// Session name (matched exactly against the name a transport was
    /// wrapped with, e.g. `"source"` or `"peer-2"`).
    pub session: String,
    /// Messages the session may send on each attempt before it dies
    /// (0 = the first send already fails).
    pub after_messages: u64,
}

/// A deterministic schedule of transport faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in no particular order.
    pub faults: Vec<Fault>,
    /// Named sessions that are dead for good: armed on *every* attempt,
    /// unlike `faults`, which arm once per attempt number.
    pub kills: Vec<SessionKill>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a connection reset after `n` messages on attempt `attempt`.
    pub fn reset_after_messages(mut self, attempt: u32, n: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            trigger: FaultTrigger::Messages(n),
            kind: FaultKind::Reset,
        });
        self
    }

    /// Add a connection reset after `n` wire bytes on attempt `attempt`.
    pub fn reset_after_bytes(mut self, attempt: u32, n: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            trigger: FaultTrigger::Bytes(n),
            kind: FaultKind::Reset,
        });
        self
    }

    /// Add a connection reset after `n` messages of `cat` on `attempt`.
    pub fn reset_after_category(mut self, attempt: u32, cat: Category, n: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            trigger: FaultTrigger::CategoryMessages(cat, n),
            kind: FaultKind::Reset,
        });
        self
    }

    /// Add a stall of `dur` after `n` messages on `attempt`.
    pub fn stall_after_messages(mut self, attempt: u32, n: u64, dur: Duration) -> Self {
        self.faults.push(Fault {
            attempt,
            trigger: FaultTrigger::Messages(n),
            kind: FaultKind::Stall(dur),
        });
        self
    }

    /// Add a truncated-frame fault after `n` messages on `attempt`.
    pub fn truncate_after_messages(mut self, attempt: u32, n: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            trigger: FaultTrigger::Messages(n),
            kind: FaultKind::Truncate,
        });
        self
    }

    /// Add a dropped-frame fault after `n` messages on `attempt`.
    pub fn drop_after_messages(mut self, attempt: u32, n: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            trigger: FaultTrigger::Messages(n),
            kind: FaultKind::Drop,
        });
        self
    }

    /// A seeded schedule of `attempts` connection resets at
    /// pseudo-random message offsets in `[lo, hi)`: attempt `k` is cut
    /// after `lo + splitmix(seed, k) % (hi - lo)` messages. Deterministic
    /// for a given seed, so a failing run is exactly reproducible.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn seeded_resets(seed: u64, attempts: u32, lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "offset range must be non-empty");
        let mut plan = Self::none();
        for k in 0..attempts {
            let off = lo + splitmix64(seed.wrapping_add(u64::from(k))) % (hi - lo);
            plan = plan.reset_after_messages(k, off);
        }
        plan
    }

    /// A seeded lossy-link schedule: over the first `messages` sends of
    /// each of `attempts` connection attempts, every message offset
    /// independently draws a frame drop with probability
    /// `drop_permille`/1000 and a latency-jitter stall with probability
    /// `jitter_permille`/1000, the stall lasting a seeded fraction of
    /// `max_jitter`. Each (attempt, offset) pair hashes through
    /// `splitmix64`, so the whole schedule — which offsets fire, what
    /// they do, and how long each stall lasts — is a pure function of
    /// the seed: two plans built with one seed are identical, and so are
    /// the fault sequences two identical runs observe.
    pub fn seeded_chaos(
        seed: u64,
        attempts: u32,
        messages: u64,
        drop_permille: u32,
        jitter_permille: u32,
        max_jitter: Duration,
    ) -> Self {
        let mut plan = Self::none();
        for attempt in 0..attempts {
            for m in 1..=messages {
                let h =
                    splitmix64(seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F) ^ m);
                let roll = h % 1000;
                if roll < u64::from(drop_permille) {
                    plan.faults.push(Fault {
                        attempt,
                        trigger: FaultTrigger::Messages(m),
                        kind: FaultKind::Drop,
                    });
                } else if roll < u64::from(drop_permille) + u64::from(jitter_permille) {
                    // A second independent draw picks the stall length in
                    // (0, max_jitter], quantized to 1/256ths.
                    let q = (splitmix64(h) % 256) + 1;
                    let stall = max_jitter.mul_f64(q as f64 / 256.0);
                    plan.faults.push(Fault {
                        attempt,
                        trigger: FaultTrigger::Messages(m),
                        kind: FaultKind::Stall(stall),
                    });
                }
            }
        }
        plan
    }

    /// Kill the named session permanently: every connection attempt it
    /// makes is reset after `after_messages` sends. Unlike the
    /// per-attempt resets, a kill never disarms — the session's
    /// reconnect budget is guaranteed to exhaust.
    pub fn kill_session(mut self, session: &str, after_messages: u64) -> Self {
        self.kills.push(SessionKill {
            session: session.to_string(),
            after_messages,
        });
        self
    }

    /// Is the named session scheduled for a permanent kill?
    pub fn kills_session(&self, session: &str) -> bool {
        self.kills.iter().any(|k| k.session == session)
    }

    /// The faults armed for one connection attempt.
    pub fn for_attempt(&self, attempt: u32) -> Vec<Fault> {
        self.faults
            .iter()
            .filter(|f| f.attempt == attempt)
            .cloned()
            .collect()
    }

    /// The faults armed for one attempt of a *named* session: the
    /// per-attempt faults plus a reset for every kill targeting the
    /// session, re-armed on every attempt.
    pub fn for_session(&self, session: &str, attempt: u32) -> Vec<Fault> {
        let mut faults = self.for_attempt(attempt);
        faults.extend(
            self.kills
                .iter()
                .filter(|k| k.session == session)
                .map(|k| Fault {
                    attempt,
                    // `Messages(n)` fires ON the n-th send, so `after`
                    // clean sends means the cut lands on send after+1.
                    trigger: FaultTrigger::Messages(k.after_messages + 1),
                    kind: FaultKind::Reset,
                }),
        );
        faults
    }
}

/// Position of `cat` in [`ALL_CATEGORIES`] — exhaustive, so adding a
/// category is a compile error here until the counter array grows too.
fn cat_index(cat: Category) -> usize {
    match cat {
        Category::DiskPrecopy => 0,
        Category::DiskPush => 1,
        Category::DiskPull => 2,
        Category::Memory => 3,
        Category::Bitmap => 4,
        Category::Cpu => 5,
        Category::Control => 6,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Shared fate of one wrapped connection: set once, observed by both
/// directions.
#[derive(Debug, Default)]
struct CutState {
    cut: AtomicBool,
    reason: Mutex<String>,
}

impl CutState {
    fn sever(&self, reason: String) {
        // First reason wins; later cuts (e.g. the peer's own shutdown)
        // keep the original diagnosis.
        let mut r = self.reason.lock();
        if !self.cut.swap(true, Ordering::SeqCst) {
            *r = reason;
        }
    }

    fn error(&self) -> TransportError {
        TransportError::Reset(self.reason.lock().clone())
    }

    fn is_cut(&self) -> bool {
        self.cut.load(Ordering::SeqCst)
    }
}

/// A [`Transport`] wrapper that injects the faults of a [`FaultPlan`].
///
/// Build connected pairs with [`faulty_pair`]; the plan is evaluated on
/// the first transport of the pair (by convention, the migration source).
pub struct FaultyTransport<T: Transport> {
    inner: T,
    shared: Arc<CutState>,
    faults: Mutex<Vec<Fault>>,
    sent_msgs: AtomicU64,
    sent_bytes: AtomicU64,
    sent_by_cat: Mutex<[u64; ALL_CATEGORIES.len()]>,
    telemetry: Mutex<Arc<Recorder>>,
}

/// How long receive paths wait between checks of the shared cut flag.
const CUT_POLL: Duration = Duration::from_millis(2);

impl<T: Transport> FaultyTransport<T> {
    fn new(inner: T, shared: Arc<CutState>, faults: Vec<Fault>) -> Self {
        Self {
            inner,
            shared,
            faults: Mutex::new(faults),
            sent_msgs: AtomicU64::new(0),
            sent_bytes: AtomicU64::new(0),
            sent_by_cat: Mutex::new([0; ALL_CATEGORIES.len()]),
            telemetry: Mutex::new(Recorder::off()),
        }
    }

    /// Wrap a single transport (no shared-fate peer wrapper) with the
    /// plan's faults for `attempt`. A fault fired here calls the inner
    /// transport's [`Transport::shutdown`], so a peer on the far side of
    /// a real socket still observes the failure as a dead stream.
    pub fn wrap(inner: T, plan: &FaultPlan, attempt: u32) -> Self {
        Self::new(
            inner,
            Arc::new(CutState::default()),
            plan.for_attempt(attempt),
        )
    }

    /// The fault (if any) fired by sending `msg` now. Counters include
    /// the message being sent, so `Messages(n)` fires ON the n-th send.
    fn fired_fault(&self, msg: &MigMessage) -> Option<Fault> {
        let msgs = self.sent_msgs.fetch_add(1, Ordering::SeqCst) + 1;
        let bytes = self.sent_bytes.fetch_add(msg.wire_size(), Ordering::SeqCst) + msg.wire_size();
        let cat = msg.category();
        let cat_idx = cat_index(cat);
        let cat_count = {
            let mut counts = self.sent_by_cat.lock();
            counts[cat_idx] += 1;
            counts[cat_idx]
        };
        let mut faults = self.faults.lock();
        let hit = faults.iter().position(|f| match f.trigger {
            FaultTrigger::Messages(n) => msgs >= n,
            FaultTrigger::Bytes(n) => bytes >= n,
            FaultTrigger::CategoryMessages(c, n) => c == cat && cat_count >= n,
        })?;
        Some(faults.swap_remove(hit))
    }

    /// Clone the attached recorder out of its cell. The lock guard is a
    /// temporary confined to this function, so callers (which may sleep
    /// on a Stall fault) never hold it across a blocking call.
    fn recorder(&self) -> Arc<Recorder> {
        self.telemetry.lock().clone()
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&self, msg: MigMessage) -> Result<(), TransportError> {
        if self.shared.is_cut() {
            return Err(self.shared.error());
        }
        if let Some(fault) = self.fired_fault(&msg) {
            // Journal the injection before acting on it: a Stall sleeps,
            // and no telemetry guard may be live across that, so the
            // recorder is cloned out behind a helper.
            let rec = self.recorder();
            let label = match fault.kind {
                FaultKind::Reset => FaultLabel::Reset,
                FaultKind::Stall(_) => FaultLabel::Stall,
                FaultKind::Truncate => FaultLabel::Truncate,
                FaultKind::Drop => FaultLabel::Drop,
            };
            let messages_before = self.sent_msgs.load(Ordering::SeqCst).saturating_sub(1);
            rec.record(|| Event::FaultInjected {
                fault: label,
                messages_before,
            });
            match fault.kind {
                FaultKind::Stall(dur) => std::thread::sleep(dur),
                FaultKind::Reset => {
                    self.shared
                        .sever(format!("injected reset at {:?}", fault.trigger));
                    self.inner.shutdown();
                    return Err(self.shared.error());
                }
                FaultKind::Truncate => {
                    // The sender believes the frame went out; the peer
                    // sees it cut short. Lost, plus a severed link.
                    self.shared
                        .sever(format!("injected truncated frame at {:?}", fault.trigger));
                    self.inner.shutdown();
                    return Ok(());
                }
                FaultKind::Drop => {
                    // The frame vanishes in flight; the link lives on.
                    // The sender cannot tell, and the next send goes
                    // through untouched.
                    return Ok(());
                }
            }
        }
        self.inner.send(msg)
    }

    fn recv(&self) -> Result<MigMessage, TransportError> {
        // Messages already in flight when the cut happened are still
        // delivered (data in the pipe survives a reset of the pipe);
        // only once the queue is dry does the cut surface.
        loop {
            match self.inner.try_recv() {
                Ok(msg) => return Ok(msg),
                Err(TransportError::Empty) => {}
                Err(e) => return Err(e),
            }
            if self.shared.is_cut() {
                return Err(self.shared.error());
            }
            match self.inner.recv_timeout(CUT_POLL) {
                Ok(msg) => return Ok(msg),
                Err(TransportError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<MigMessage, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.try_recv() {
                Ok(msg) => return Ok(msg),
                Err(TransportError::Empty) => {}
                Err(e) => return Err(e),
            }
            if self.shared.is_cut() {
                return Err(self.shared.error());
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(TransportError::Timeout);
            }
            match self.inner.recv_timeout(left.min(CUT_POLL)) {
                Ok(msg) => return Ok(msg),
                Err(TransportError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn try_recv(&self) -> Result<MigMessage, TransportError> {
        match self.inner.try_recv() {
            Err(TransportError::Empty) if self.shared.is_cut() => Err(self.shared.error()),
            other => other,
        }
    }

    fn sent_ledger(&self) -> TransferLedger {
        self.inner.sent_ledger()
    }

    fn shutdown(&self) {
        self.shared.sever("local shutdown".to_string());
        self.inner.shutdown();
    }

    fn set_telemetry(&self, recorder: &Arc<Recorder>, side: Side) {
        *self.telemetry.lock() = Arc::clone(recorder);
        self.inner.set_telemetry(recorder, side);
    }
}

impl<T: Transport> std::fmt::Debug for FaultyTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("cut", &self.shared.is_cut())
            .field("sent_msgs", &self.sent_msgs.load(Ordering::SeqCst))
            .finish()
    }
}

/// Wrap a connected transport pair with a shared-fate fault injector.
/// The plan's faults for `attempt` are evaluated on sends from `a` (the
/// migration source); a fault fired there is observed on both sides.
pub fn faulty_pair<A: Transport, B: Transport>(
    a: A,
    b: B,
    plan: &FaultPlan,
    attempt: u32,
) -> (FaultyTransport<A>, FaultyTransport<B>) {
    let shared = Arc::new(CutState::default());
    (
        FaultyTransport::new(a, Arc::clone(&shared), plan.for_attempt(attempt)),
        FaultyTransport::new(b, Arc::clone(&shared), Vec::new()),
    )
}

/// Wrap a connected transport pair belonging to a *named* session: the
/// per-attempt faults arm as in [`faulty_pair`], and any
/// [`FaultPlan::kill_session`] targeting `session` re-arms on every
/// attempt, so a killed session dies no matter how often it reconnects.
pub fn faulty_named_pair<A: Transport, B: Transport>(
    a: A,
    b: B,
    plan: &FaultPlan,
    session: &str,
    attempt: u32,
) -> (FaultyTransport<A>, FaultyTransport<B>) {
    let shared = Arc::new(CutState::default());
    (
        FaultyTransport::new(a, Arc::clone(&shared), plan.for_session(session, attempt)),
        FaultyTransport::new(b, Arc::clone(&shared), Vec::new()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex;

    fn pull(block: u64) -> MigMessage {
        MigMessage::PullRequest { block }
    }

    #[test]
    fn reset_fires_at_exact_message_offset() {
        let (a, b) = duplex();
        let plan = FaultPlan::none().reset_after_messages(0, 3);
        let (a, b) = faulty_pair(a, b, &plan, 0);
        a.send(pull(1)).expect("1st");
        a.send(pull(2)).expect("2nd");
        assert!(matches!(a.send(pull(3)), Err(TransportError::Reset(_))));
        // Both directions are dead, with the diagnosis preserved.
        assert!(matches!(a.send(pull(4)), Err(TransportError::Reset(_))));
        // Messages in flight before the cut still arrive...
        assert_eq!(b.recv().expect("in flight"), pull(1));
        assert_eq!(b.recv().expect("in flight"), pull(2));
        // ...then the reset surfaces, with the diagnosis.
        match b.recv_timeout(Duration::from_millis(50)) {
            Err(TransportError::Reset(why)) => assert!(why.contains("Messages(3)"), "{why}"),
            other => panic!("peer must observe the reset, got {other:?}"),
        }
        assert!(matches!(b.send(pull(9)), Err(TransportError::Reset(_))));
    }

    #[test]
    fn byte_offset_trigger_counts_wire_size() {
        let (a, b) = duplex();
        // Each PullRequest is FRAME_OVERHEAD + 8 = 24 bytes: cut inside
        // the third message's window.
        let plan = FaultPlan::none().reset_after_bytes(0, 60);
        let (a, _b) = faulty_pair(a, b, &plan, 0);
        a.send(pull(1)).expect("24 bytes");
        a.send(pull(2)).expect("48 bytes");
        assert!(matches!(a.send(pull(3)), Err(TransportError::Reset(_))));
    }

    #[test]
    fn category_trigger_ignores_other_traffic() {
        let (a, b) = duplex();
        let plan = FaultPlan::none().reset_after_category(0, Category::DiskPush, 2);
        let (a, _b) = faulty_pair(a, b, &plan, 0);
        for i in 0..10 {
            a.send(pull(i)).expect("pulls are DiskPull traffic");
        }
        let push = |block| MigMessage::PostCopyBlock {
            block,
            pulled: false,
            payload_len: 16,
            payload: None,
        };
        a.send(push(1)).expect("1st push");
        assert!(matches!(a.send(push(2)), Err(TransportError::Reset(_))));
    }

    #[test]
    fn faults_arm_per_attempt() {
        let plan = FaultPlan::none()
            .reset_after_messages(0, 1)
            .reset_after_messages(1, 2);
        // Attempt 0: first send dies.
        let (a0, b0) = duplex();
        let (a0, _b0) = faulty_pair(a0, b0, &plan, 0);
        assert!(a0.send(pull(1)).is_err());
        // Attempt 1: survives one send, dies on the second.
        let (a1, b1) = duplex();
        let (a1, _b1) = faulty_pair(a1, b1, &plan, 1);
        a1.send(pull(1)).expect("attempt 1 survives the first send");
        assert!(a1.send(pull(2)).is_err());
        // Attempt 2: no faults armed.
        let (a2, b2) = duplex();
        let (a2, b2) = faulty_pair(a2, b2, &plan, 2);
        for i in 0..10 {
            a2.send(pull(i)).expect("attempt 2 is clean");
        }
        for i in 0..10 {
            assert_eq!(b2.recv().expect("delivery"), pull(i));
        }
    }

    #[test]
    fn stall_delays_but_does_not_kill() {
        let (a, b) = duplex();
        let plan = FaultPlan::none().stall_after_messages(0, 2, Duration::from_millis(40));
        let (a, b) = faulty_pair(a, b, &plan, 0);
        let start = Instant::now();
        a.send(pull(1)).expect("1st");
        a.send(pull(2)).expect("2nd (stalled)");
        assert!(start.elapsed() >= Duration::from_millis(40), "no stall");
        a.send(pull(3)).expect("3rd");
        for i in 1..=3 {
            assert_eq!(b.recv().expect("delivery"), pull(i));
        }
    }

    #[test]
    fn truncate_loses_the_frame_silently() {
        let (a, b) = duplex();
        let plan = FaultPlan::none().truncate_after_messages(0, 2);
        let (a, b) = faulty_pair(a, b, &plan, 0);
        a.send(pull(1)).expect("1st");
        // The truncated send *appears* to succeed...
        a.send(pull(2)).expect("sender cannot tell");
        // ...but the frame is lost and the link is dead behind it.
        assert_eq!(b.recv().expect("1st arrives"), pull(1));
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(TransportError::Reset(_))
        ));
        assert!(matches!(a.send(pull(3)), Err(TransportError::Reset(_))));
    }

    #[test]
    fn cat_index_agrees_with_all_categories_order() {
        for (i, &c) in ALL_CATEGORIES.iter().enumerate() {
            assert_eq!(cat_index(c), i, "{c:?} moved in ALL_CATEGORIES");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let p1 = FaultPlan::seeded_resets(42, 3, 10, 1000);
        let p2 = FaultPlan::seeded_resets(42, 3, 10, 1000);
        assert_eq!(p1, p2);
        assert_eq!(p1.faults.len(), 3);
        for (k, f) in p1.faults.iter().enumerate() {
            assert_eq!(f.attempt, k as u32);
            let FaultTrigger::Messages(n) = f.trigger else {
                panic!("seeded plans cut at message offsets")
            };
            assert!((10..1000).contains(&n));
        }
        assert_ne!(p1, FaultPlan::seeded_resets(43, 3, 10, 1000));
    }

    #[test]
    fn killed_session_dies_on_every_attempt() {
        // A reset disarms after firing once; a kill re-arms forever —
        // the difference between a flapping link and a dead host.
        let plan = FaultPlan::none().kill_session("peer-1", 2);
        assert!(plan.kills_session("peer-1"));
        assert!(!plan.kills_session("peer-0"));
        for attempt in 0..5 {
            let (a, b) = duplex();
            let (a, _b) = faulty_named_pair(a, b, &plan, "peer-1", attempt);
            a.send(pull(1)).expect("1st send survives");
            a.send(pull(2)).expect("2nd send survives");
            assert!(
                matches!(a.send(pull(3)), Err(TransportError::Reset(_))),
                "attempt {attempt} must die on the 3rd send"
            );
        }
        // Other sessions are untouched by the kill.
        let (a, b) = duplex();
        let (a, _b) = faulty_named_pair(a, b, &plan, "peer-0", 0);
        for i in 0..10 {
            a.send(pull(i)).expect("unkilled session is clean");
        }
    }

    #[test]
    fn drop_loses_the_frame_but_the_link_survives() {
        let (a, b) = duplex();
        let plan = FaultPlan::none().drop_after_messages(0, 2);
        let (a, b) = faulty_pair(a, b, &plan, 0);
        a.send(pull(1)).expect("1st");
        // The dropped send appears to succeed...
        a.send(pull(2)).expect("sender cannot tell");
        // ...and unlike Truncate the link survives it.
        a.send(pull(3)).expect("3rd goes through");
        assert_eq!(b.recv().expect("1st arrives"), pull(1));
        assert_eq!(b.recv().expect("3rd arrives, 2nd lost"), pull(3));
        assert_eq!(
            b.try_recv().expect_err("nothing else"),
            TransportError::Empty
        );
    }

    #[test]
    fn seeded_chaos_is_deterministic_and_within_bounds() {
        let p1 = FaultPlan::seeded_chaos(7, 2, 500, 40, 60, Duration::from_millis(8));
        let p2 = FaultPlan::seeded_chaos(7, 2, 500, 40, 60, Duration::from_millis(8));
        assert_eq!(p1, p2, "one seed, one schedule");
        assert_ne!(
            p1,
            FaultPlan::seeded_chaos(8, 2, 500, 40, 60, Duration::from_millis(8))
        );
        assert!(!p1.faults.is_empty(), "~10% of 1000 slots must fire");
        for f in &p1.faults {
            assert!(f.attempt < 2);
            let FaultTrigger::Messages(n) = f.trigger else {
                panic!("chaos cuts at message offsets")
            };
            assert!((1..=500).contains(&n));
            match f.kind {
                FaultKind::Drop => {}
                FaultKind::Stall(d) => {
                    assert!(d > Duration::ZERO && d <= Duration::from_millis(8));
                }
                ref other => panic!("chaos only drops and jitters, got {other:?}"),
            }
        }
    }

    #[test]
    fn clean_pair_is_transparent() {
        let (a, b) = duplex();
        let (a, b) = faulty_pair(a, b, &FaultPlan::none(), 0);
        a.send(MigMessage::Suspended).expect("send");
        assert_eq!(b.recv().expect("recv"), MigMessage::Suspended);
        assert_eq!(
            a.try_recv().expect_err("nothing queued"),
            TransportError::Empty
        );
        assert!(a.sent_ledger().total() > 0);
    }
}
