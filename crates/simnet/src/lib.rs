//! Network substrate for migration: link models, rate limiting, the wire
//! protocol, and a live-mode in-process transport.
//!
//! The paper's testbed connects source, destination and client through a
//! Gigabit LAN, and §VI-C-3 limits the bandwidth the migration process may
//! use to trade total migration time against workload interference. The
//! pieces here reproduce that environment:
//!
//! * [`Link`] — bandwidth/latency arithmetic in virtual time.
//! * [`TokenBucket`] — a virtual-time token-bucket limiter (the "limit the
//!   network bandwidth used by the migration process" knob).
//! * [`capacity`] — max-min fair sharing of a contended resource; used to
//!   model the migration stream and the guest workload competing for disk
//!   and NIC throughput (the mechanism behind Figure 6).
//! * [`proto`] — the migration wire protocol: typed messages with exact
//!   size accounting per traffic category, so "amount of migrated data"
//!   (Tables I & II) is measured, not estimated.
//! * [`transport`] — the [`transport::Transport`] interface plus a
//!   crossbeam-channel duplex implementation for live (threaded) mode,
//!   with byte counters and optional wall-clock pacing.
//! * [`codec`] — a binary wire codec and length-prefixed framing for the
//!   protocol, and [`tcp`] — a real-socket transport built on it, so the
//!   live prototype can migrate across processes/machines.
//! * [`fault`] — deterministic fault injection ([`fault::FaultyTransport`])
//!   for exercising the reconnect-and-resume path: seeded connection
//!   resets, stalls and truncated frames at exact wire offsets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod codec;
pub mod fault;
mod link;
pub mod proto;
mod ratelimit;
pub mod tcp;
pub mod transport;

pub use link::Link;
pub use ratelimit::TokenBucket;
