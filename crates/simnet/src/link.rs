//! Point-to-point link model.

use des::SimDuration;

/// A full-duplex link with fixed bandwidth and propagation latency.
///
/// Bandwidth is expressed in bytes/second of goodput. The paper's Gigabit
/// LAN is [`Link::gigabit`]; its effective goodput (~119 MB/s) already
/// accounts for Ethernet/IP/TCP framing so message-level accounting can
/// stay simple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    bandwidth: f64,
    latency: SimDuration,
}

impl Link {
    /// Create a link with `bandwidth` bytes/second and one-way `latency`.
    ///
    /// # Panics
    /// Panics when `bandwidth` is not strictly positive.
    pub fn new(bandwidth: f64, latency: SimDuration) -> Self {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "bandwidth must be positive and finite"
        );
        Self { bandwidth, latency }
    }

    /// The paper's Gigabit LAN: ~119 MiB/s goodput, 100 µs one-way latency.
    pub fn gigabit() -> Self {
        Self::new(119.0 * 1024.0 * 1024.0, SimDuration::from_micros(100))
    }

    /// A 100 Mbit link (for WAN-ish ablations): ~11.9 MiB/s, 2 ms latency.
    pub fn fast_ethernet() -> Self {
        Self::new(11.9 * 1024.0 * 1024.0, SimDuration::from_millis(2))
    }

    /// Goodput in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Serialization time for `bytes` (no latency term).
    pub fn serialize_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Time for `bytes` to fully arrive: serialization plus one latency.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.serialize_time(bytes) + self.latency
    }

    /// Bytes the link can move in `dt` at full rate.
    pub fn bytes_in(&self, dt: SimDuration) -> u64 {
        (self.bandwidth * dt.as_secs_f64()).floor() as u64
    }

    /// A copy of this link with bandwidth capped at `limit` bytes/second
    /// (the §VI-C-3 migration rate limit). A limit at or above the link
    /// rate returns the link unchanged.
    pub fn limited(&self, limit: f64) -> Link {
        assert!(limit > 0.0, "rate limit must be positive");
        Link {
            bandwidth: self.bandwidth.min(limit),
            latency: self.latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_moves_a_gigabyte_in_about_nine_seconds() {
        let l = Link::gigabit();
        let t = l.transfer_time(1024 * 1024 * 1024);
        assert!((8.0..9.0).contains(&t.as_secs_f64()), "{t}");
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = Link::new(1_000_000.0, SimDuration::from_millis(10));
        let t = l.transfer_time(1_000_000);
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-9);
        assert_eq!(l.serialize_time(1_000_000), SimDuration::from_secs(1));
    }

    #[test]
    fn bytes_in_inverts_serialize_time() {
        let l = Link::gigabit();
        let dt = SimDuration::from_secs(3);
        let bytes = l.bytes_in(dt);
        let back = l.serialize_time(bytes);
        assert!((back.as_secs_f64() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn limited_caps_bandwidth() {
        let l = Link::gigabit();
        let capped = l.limited(10.0 * 1024.0 * 1024.0);
        assert_eq!(capped.bandwidth(), 10.0 * 1024.0 * 1024.0);
        assert_eq!(capped.latency(), l.latency());
        // Limit above link rate: unchanged.
        let uncapped = l.limited(f64::MAX);
        assert_eq!(uncapped.bandwidth(), l.bandwidth());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        Link::new(0.0, SimDuration::ZERO);
    }
}
