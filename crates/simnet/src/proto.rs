//! The migration wire protocol.
//!
//! Every byte that crosses the source→destination link is carried by a
//! [`MigMessage`], and every message knows its exact [`wire
//! size`](MigMessage::wire_size) and [traffic category](Category). The
//! "amount of migrated data" rows of Tables I and II are sums over a
//! [`TransferLedger`] fed from these sizes — measured, never estimated.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Fixed per-message framing overhead (type tag, lengths, checksum) —
/// a deliberate, simple stand-in for the prototype's TCP record framing.
pub const FRAME_OVERHEAD: u64 = 16;

/// Wire payload of a [`MigMessage::BlockRef`]: block index plus
/// fingerprint, the 16 bytes a dedup hit costs instead of a full block.
pub const BLOCK_REF_WIRE: u64 = 16;

/// Traffic categories for byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Disk blocks sent during pre-copy iterations.
    DiskPrecopy,
    /// Disk blocks pushed by the source during post-copy.
    DiskPush,
    /// Disk blocks pulled on demand during post-copy (and the pull
    /// requests themselves).
    DiskPull,
    /// Memory pages (all pre-copy rounds plus the freeze-phase remainder).
    Memory,
    /// The block-bitmap transferred in freeze-and-copy.
    Bitmap,
    /// CPU context.
    Cpu,
    /// Handshakes, phase transitions, acknowledgements.
    Control,
}

/// All traffic categories, for iteration in reports.
pub const ALL_CATEGORIES: [Category; 7] = [
    Category::DiskPrecopy,
    Category::DiskPush,
    Category::DiskPull,
    Category::Memory,
    Category::Bitmap,
    Category::Cpu,
    Category::Control,
];

/// A migration protocol message.
///
/// Block/page payloads are optional: live mode ships real bytes in
/// `payload`, simulated mode ships `None` and relies on `payload_len` for
/// accounting. `payload_len` is authoritative for wire sizing in both
/// modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigMessage {
    /// Ask the destination to provision a VBD of the given geometry.
    PrepareVbd {
        /// Block size in bytes.
        block_size: u32,
        /// Capacity in blocks.
        num_blocks: u64,
    },
    /// Destination is ready to receive.
    PrepareAck,
    /// A batch of disk blocks (pre-copy traffic).
    DiskBlocks {
        /// Block indices, ascending.
        blocks: Vec<u64>,
        /// Total payload bytes across the batch.
        payload_len: u64,
        /// Live-mode contents, concatenated in index order.
        payload: Option<Bytes>,
    },
    /// A dedup reference instead of a full block: "you already hold
    /// content with this fingerprint — copy it to `block`". Sent only
    /// on a session that negotiated dedup, for content the destination
    /// acknowledged (its [`MigMessage::ContentSummary`]) or that this
    /// session already shipped. The destination verifies the resident
    /// content by re-hash before reuse and answers
    /// [`MigMessage::BlockRefMiss`] when it cannot prove a match, so a
    /// reference never weakens bit-identity.
    BlockRef {
        /// Destination block to materialize.
        block: u64,
        /// Content fingerprint (`vdisk::content::hash_block`).
        fingerprint: u64,
    },
    /// Destination → source: a [`MigMessage::BlockRef`] could not be
    /// resolved against resident content (evicted, never applied, or a
    /// fingerprint mismatch on verification). The source falls back to
    /// a full `DiskBlocks` send for this block.
    BlockRefMiss {
        /// The unresolved block.
        block: u64,
    },
    /// Destination → source after a dedup-negotiated handshake: the
    /// distinct fingerprints of the resident image, seeding the
    /// source's view of what a reference can reach. Re-sent on every
    /// reconnect — a resumed session must re-validate, never trust,
    /// its previous view (DESIGN.md §15).
    ContentSummary {
        /// Distinct resident fingerprints, ascending.
        fingerprints: Vec<u64>,
    },
    /// A batch of disk blocks whose payload is per-block compressed
    /// frames (`simnet::codec::lz`), used for residual full-block sends
    /// on a session that negotiated compression. `raw_len` is the
    /// uncompressed total, kept for `wire.bytes_raw` accounting.
    CompressedBlocks {
        /// Block indices, ascending.
        blocks: Vec<u64>,
        /// Uncompressed payload bytes across the batch.
        raw_len: u64,
        /// Concatenated self-describing compressed frames, block order.
        payload: Bytes,
    },
    /// A batch of memory pages.
    MemPages {
        /// Page indices, ascending.
        pages: Vec<u64>,
        /// Total payload bytes across the batch.
        payload_len: u64,
        /// Live-mode contents, concatenated in index order.
        payload: Option<Bytes>,
    },
    /// The CPU context, sent while the VM is suspended.
    CpuState {
        /// Context size in bytes.
        payload_len: u64,
        /// Live-mode contents.
        payload: Option<Bytes>,
    },
    /// The block-bitmap of unsynchronized blocks (freeze-and-copy phase).
    Bitmap {
        /// Encoded bitmap (see `block_bitmap::ser`). Always materialized:
        /// its size is part of downtime in both modes.
        encoded: Bytes,
    },
    /// Source has suspended the VM (start of downtime).
    Suspended,
    /// Destination has resumed the VM (end of downtime).
    Resumed,
    /// Destination asks for one block it needs now (post-copy pull).
    PullRequest {
        /// The block a guest read is waiting on.
        block: u64,
    },
    /// One block sent during post-copy (pushed, or answering a pull).
    PostCopyBlock {
        /// Block index.
        block: u64,
        /// `true` when this answers a [`MigMessage::PullRequest`].
        pulled: bool,
        /// Payload size in bytes.
        payload_len: u64,
        /// Live-mode contents.
        payload: Option<Bytes>,
    },
    /// Source has pushed every block marked in its bitmap.
    PushComplete,
    /// Destination confirms full synchronization; source may be retired.
    MigrationComplete,
    /// Source acknowledges [`MigMessage::MigrationComplete`]; the
    /// destination may drop the link. Without this ack a lost completion
    /// message would strand the source in post-copy with no peer.
    CompleteAck,
    /// First message on every (re)connection: identifies the migration
    /// session and the connection attempt, so a destination can tell a
    /// resumed source from a stranger.
    SessionHello {
        /// Random id chosen by the source at migration start.
        session_id: u64,
        /// 0 for the initial connection, incremented per reconnect.
        attempt: u32,
        /// Source offers content-addressed dedup for this session.
        dedup: bool,
        /// Source offers compressed residual block sends.
        compress: bool,
    },
    /// Destination → peer holder: ask for one block by content identity
    /// (multi-source fetch). The peer serves the block only when it can
    /// prove it still holds content matching `fingerprint` at
    /// `generation`; anything else answers [`MigMessage::BlockMiss`], so
    /// a stale directory entry degrades to a miss, never to wrong bytes.
    BlockRequest {
        /// Destination block to fetch.
        block: u64,
        /// Expected content fingerprint (`vdisk::content::hash_block`).
        fingerprint: u64,
        /// Replica-table generation the fingerprint was recorded at.
        generation: u64,
    },
    /// Peer holder → destination: the content answering a
    /// [`MigMessage::BlockRequest`]. The destination re-verifies the
    /// payload hash against the requested fingerprint before applying.
    BlockData {
        /// Block index this content materializes.
        block: u64,
        /// Generation the peer holds the block at.
        generation: u64,
        /// Payload size in bytes.
        payload_len: u64,
        /// Live-mode contents.
        payload: Option<Bytes>,
    },
    /// Peer holder → destination: a [`MigMessage::BlockRequest`] could
    /// not be served (generation moved on, content evicted, or a
    /// fingerprint mismatch). The planner re-routes the block to the
    /// source or another holder.
    BlockMiss {
        /// The unserved block.
        block: u64,
    },
    /// Source → destination at freeze time: the content fingerprints of
    /// the frozen bitmap's blocks. The guest is suspended when this is
    /// built, so the fingerprints stay valid for the whole post-copy
    /// phase — they are the verification anchors a destination needs to
    /// fetch still-owed blocks from *peer holders* should the source die
    /// with its reconnect budget exhausted (multi-source failover).
    BlockManifest {
        /// Block indices, ascending (the frozen bitmap's set bits).
        blocks: Vec<u64>,
        /// `vdisk::content::hash_block` of each block, same order.
        fingerprints: Vec<u64>,
    },
    /// Destination's reply to a [`MigMessage::SessionHello`]: where it
    /// stands, so the source retransmits *only* what was lost — the
    /// paper's incremental-migration bitmap reused as crash recovery.
    ResumeFrom {
        /// Destination protocol phase (see [`ResumePhase`]).
        phase: ResumePhase,
        /// Destination accepts dedup (both sides must agree; a session
        /// is dedup-enabled only when offer and accept are both true).
        dedup: bool,
        /// Destination accepts compressed block sends.
        compress: bool,
        /// Encoded block-bitmap. During pre-copy and freeze: blocks the
        /// destination has RECEIVED. During post-copy: blocks it still
        /// NEEDS (its transferred-block bitmap).
        disk_bitmap: Bytes,
        /// Encoded page bitmap of RECEIVED memory pages (empty once the
        /// guest has resumed: memory is complete by then).
        mem_bitmap: Bytes,
    },
}

/// Destination protocol phase reported in [`MigMessage::ResumeFrom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumePhase {
    /// Nothing received yet (initial connection).
    AwaitPrepare,
    /// Receiving pre-copy disk blocks and memory pages.
    Precopy,
    /// `Suspended` seen; waiting for the freeze payloads (tail pages, CPU
    /// context, block-bitmap).
    Frozen,
    /// Guest resumed on the destination; post-copy in progress.
    PostCopy,
}

impl ResumePhase {
    /// Wire encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            Self::AwaitPrepare => 0,
            Self::Precopy => 1,
            Self::Frozen => 2,
            Self::PostCopy => 3,
        }
    }

    /// Decode; `None` for unknown values.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::AwaitPrepare),
            1 => Some(Self::Precopy),
            2 => Some(Self::Frozen),
            3 => Some(Self::PostCopy),
            _ => None,
        }
    }
}

impl MigMessage {
    /// Exact size of the message on the wire.
    pub fn wire_size(&self) -> u64 {
        FRAME_OVERHEAD
            + match self {
                Self::PrepareVbd { .. } => 12,
                Self::PrepareAck | Self::Suspended | Self::Resumed => 0,
                Self::PushComplete | Self::MigrationComplete => 0,
                Self::DiskBlocks {
                    blocks,
                    payload_len,
                    ..
                } => 8 * blocks.len() as u64 + payload_len,
                Self::BlockRef { .. } => BLOCK_REF_WIRE,
                Self::BlockRefMiss { .. } => 8,
                Self::ContentSummary { fingerprints } => 8 * fingerprints.len() as u64,
                Self::CompressedBlocks {
                    blocks, payload, ..
                } => 8 * blocks.len() as u64 + payload.len() as u64,
                Self::MemPages {
                    pages, payload_len, ..
                } => 8 * pages.len() as u64 + payload_len,
                Self::CpuState { payload_len, .. } => *payload_len,
                Self::Bitmap { encoded } => encoded.len() as u64,
                Self::PullRequest { .. } => 8,
                Self::BlockRequest { .. } => 24,
                Self::BlockData { payload_len, .. } => 16 + payload_len,
                Self::BlockMiss { .. } => 8,
                Self::BlockManifest {
                    blocks,
                    fingerprints,
                } => 8 * (blocks.len() + fingerprints.len()) as u64,
                Self::PostCopyBlock { payload_len, .. } => 8 + 1 + payload_len,
                Self::CompleteAck => 0,
                Self::SessionHello { .. } => 14,
                Self::ResumeFrom {
                    disk_bitmap,
                    mem_bitmap,
                    ..
                } => 3 + disk_bitmap.len() as u64 + mem_bitmap.len() as u64,
            }
    }

    /// Traffic category the message is accounted under.
    pub fn category(&self) -> Category {
        match self {
            Self::PrepareVbd { .. }
            | Self::PrepareAck
            | Self::Suspended
            | Self::Resumed
            | Self::PushComplete
            | Self::MigrationComplete
            | Self::CompleteAck
            | Self::SessionHello { .. } => Category::Control,
            // A miss is a control NAK; the resend it provokes carries
            // the data bytes. The summary is handshake traffic.
            Self::BlockRefMiss { .. } | Self::ContentSummary { .. } => Category::Control,
            // Peer fetches are on-demand traffic: the request and the
            // data it provokes account like a post-copy pull, a miss is
            // a control NAK.
            Self::BlockRequest { .. } | Self::BlockData { .. } => Category::DiskPull,
            Self::BlockMiss { .. } => Category::Control,
            // The manifest is freeze-phase metadata about blocks, like
            // the bitmap it rides alongside.
            Self::BlockManifest { .. } => Category::Bitmap,
            Self::ResumeFrom { .. } => Category::Bitmap,
            Self::DiskBlocks { .. } => Category::DiskPrecopy,
            Self::BlockRef { .. } | Self::CompressedBlocks { .. } => Category::DiskPrecopy,
            Self::MemPages { .. } => Category::Memory,
            Self::CpuState { .. } => Category::Cpu,
            Self::Bitmap { .. } => Category::Bitmap,
            Self::PullRequest { .. } => Category::DiskPull,
            Self::PostCopyBlock { pulled, .. } => {
                if *pulled {
                    Category::DiskPull
                } else {
                    Category::DiskPush
                }
            }
        }
    }
}

/// Dedup/compression wire accounting for one migration: what the data
/// plane *would* have sent block-for-block (`bytes_raw`) against what
/// actually crossed the link (`bytes_sent`), journaled in telemetry as
/// `wire.bytes_raw` / `wire.bytes_sent` / `wire.blocks_deduped` /
/// `wire.blocks_compressed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Block payload bytes before dedup/compression (full framing).
    pub bytes_raw: u64,
    /// Block payload bytes actually sent (refs + compressed frames).
    pub bytes_sent: u64,
    /// Blocks shipped as a 16-byte [`MigMessage::BlockRef`].
    pub blocks_deduped: u64,
    /// Blocks whose payload went out smaller than raw.
    pub blocks_compressed: u64,
}

impl WireStats {
    /// Bytes the content-aware path kept off the wire.
    pub fn saved(&self) -> u64 {
        self.bytes_raw.saturating_sub(self.bytes_sent)
    }

    /// Percentage reduction of bytes-on-wire (0 when nothing was sent).
    pub fn reduction_pct(&self) -> f64 {
        if self.bytes_raw == 0 {
            0.0
        } else {
            100.0 * self.saved() as f64 / self.bytes_raw as f64
        }
    }

    /// Fold another migration's accounting into this one.
    pub fn merge(&mut self, other: &WireStats) {
        self.bytes_raw += other.bytes_raw;
        self.bytes_sent += other.bytes_sent;
        self.blocks_deduped += other.blocks_deduped;
        self.blocks_compressed += other.blocks_compressed;
    }
}

/// Per-category byte counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferLedger {
    disk_precopy: u64,
    disk_push: u64,
    disk_pull: u64,
    memory: u64,
    bitmap: u64,
    cpu: u64,
    control: u64,
}

impl TransferLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` under `cat`.
    pub fn add(&mut self, cat: Category, bytes: u64) {
        *self.slot(cat) += bytes;
    }

    /// Record a message by its own size and category.
    pub fn record(&mut self, msg: &MigMessage) {
        self.add(msg.category(), msg.wire_size());
    }

    /// Bytes recorded under `cat`.
    pub fn get(&self, cat: Category) -> u64 {
        match cat {
            Category::DiskPrecopy => self.disk_precopy,
            Category::DiskPush => self.disk_push,
            Category::DiskPull => self.disk_pull,
            Category::Memory => self.memory,
            Category::Bitmap => self.bitmap,
            Category::Cpu => self.cpu,
            Category::Control => self.control,
        }
    }

    fn slot(&mut self, cat: Category) -> &mut u64 {
        match cat {
            Category::DiskPrecopy => &mut self.disk_precopy,
            Category::DiskPush => &mut self.disk_push,
            Category::DiskPull => &mut self.disk_pull,
            Category::Memory => &mut self.memory,
            Category::Bitmap => &mut self.bitmap,
            Category::Cpu => &mut self.cpu,
            Category::Control => &mut self.control,
        }
    }

    /// All disk bytes (pre-copy + push + pull).
    pub fn disk_total(&self) -> u64 {
        self.disk_precopy + self.disk_push + self.disk_pull
    }

    /// Grand total across categories.
    pub fn total(&self) -> u64 {
        ALL_CATEGORIES.iter().map(|&c| self.get(c)).sum()
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &TransferLedger) {
        for c in ALL_CATEGORIES {
            self.add(c, other.get(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_content() {
        let empty = MigMessage::PrepareAck;
        assert_eq!(empty.wire_size(), FRAME_OVERHEAD);

        let one_block = MigMessage::DiskBlocks {
            blocks: vec![7],
            payload_len: 4096,
            payload: None,
        };
        assert_eq!(one_block.wire_size(), FRAME_OVERHEAD + 8 + 4096);

        let batch = MigMessage::DiskBlocks {
            blocks: (0..10).collect(),
            payload_len: 10 * 4096,
            payload: None,
        };
        assert_eq!(batch.wire_size(), FRAME_OVERHEAD + 80 + 40_960);
    }

    #[test]
    fn categories_assigned_correctly() {
        assert_eq!(
            MigMessage::PullRequest { block: 1 }.category(),
            Category::DiskPull
        );
        let pushed = MigMessage::PostCopyBlock {
            block: 1,
            pulled: false,
            payload_len: 4096,
            payload: None,
        };
        assert_eq!(pushed.category(), Category::DiskPush);
        let pulled = MigMessage::PostCopyBlock {
            block: 1,
            pulled: true,
            payload_len: 4096,
            payload: None,
        };
        assert_eq!(pulled.category(), Category::DiskPull);
        assert_eq!(MigMessage::Suspended.category(), Category::Control);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = TransferLedger::new();
        a.record(&MigMessage::DiskBlocks {
            blocks: vec![0, 1],
            payload_len: 8192,
            payload: None,
        });
        a.record(&MigMessage::PullRequest { block: 3 });
        assert_eq!(a.get(Category::DiskPrecopy), FRAME_OVERHEAD + 16 + 8192);
        assert_eq!(a.get(Category::DiskPull), FRAME_OVERHEAD + 8);
        assert_eq!(a.disk_total(), a.total());

        let mut b = TransferLedger::new();
        b.add(Category::Memory, 100);
        b.merge(&a);
        assert_eq!(b.total(), a.total() + 100);
    }

    #[test]
    fn bitmap_message_sized_by_encoding() {
        use block_bitmap::{ser, DirtyMap, FlatBitmap};
        let mut bm = FlatBitmap::new(10 * 1024 * 1024);
        for i in 0..62 {
            bm.set(i * 1000);
        }
        let msg = MigMessage::Bitmap {
            encoded: Bytes::from(ser::encode(&bm)),
        };
        // 62 dirty blocks on a 40 GB disk: the freeze-phase bitmap is tiny.
        assert!(msg.wire_size() < 1024);
        assert_eq!(msg.category(), Category::Bitmap);
    }
}
