//! Token-bucket rate limiting in virtual time.

use des::{SimDuration, SimTime};

/// A token bucket: capacity `burst` bytes, refilled at `rate` bytes/second
/// of virtual time. Used to throttle the migration stream (§VI-C-3).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket refilled at `rate` bytes/second holding at most
    /// `burst` bytes, initially full.
    ///
    /// # Panics
    /// Panics when `rate` or `burst` is not strictly positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(burst > 0.0 && burst.is_finite(), "burst must be positive");
        Self {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Refill rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn refill(&mut self, now: SimTime) {
        // The clock may be observed at equal times repeatedly; only move
        // forward.
        if now > self.last {
            let dt = now.since(self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last = now;
        }
    }

    /// Attempt to consume `bytes` at virtual time `now`. Returns `true` on
    /// success; on failure no tokens are consumed.
    pub fn try_consume(&mut self, bytes: u64, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Time until `bytes` could be consumed, given no other consumers.
    /// Zero when it is already possible. A request larger than the burst
    /// is satisfied by letting the bucket go negative — it can never be
    /// satisfied from stored tokens alone, so we report the time to
    /// accumulate the full deficit.
    pub fn time_until(&mut self, bytes: u64, now: SimTime) -> SimDuration {
        self.refill(now);
        let deficit = bytes as f64 - self.tokens;
        if deficit <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(deficit / self.rate)
        }
    }

    /// Consume `bytes` unconditionally, letting the balance go negative;
    /// returns the virtual time at which the bucket returns to balance —
    /// i.e. when the send completes under the rate limit. This is the
    /// natural primitive for simulation: the caller schedules the next
    /// send at the returned time.
    pub fn consume_paced(&mut self, bytes: u64, now: SimTime) -> SimTime {
        self.refill(now);
        self.tokens -= bytes as f64;
        if self.tokens >= 0.0 {
            now
        } else {
            now + SimDuration::from_secs_f64(-self.tokens / self.rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn initial_burst_available() {
        let mut tb = TokenBucket::new(1000.0, 500.0);
        assert!(tb.try_consume(500, SimTime::ZERO));
        assert!(!tb.try_consume(1, SimTime::ZERO));
    }

    #[test]
    fn refills_over_time() {
        let mut tb = TokenBucket::new(1000.0, 500.0);
        assert!(tb.try_consume(500, SimTime::ZERO));
        assert!(!tb.try_consume(100, t(0.05))); // only 50 accumulated
        assert!(tb.try_consume(100, t(0.1))); // 100 accumulated
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut tb = TokenBucket::new(1000.0, 500.0);
        // After a long idle period only `burst` tokens exist.
        assert!(tb.try_consume(500, t(100.0)));
        assert!(!tb.try_consume(1, t(100.0)));
    }

    #[test]
    fn time_until_reports_wait() {
        let mut tb = TokenBucket::new(1000.0, 500.0);
        tb.try_consume(500, SimTime::ZERO);
        let wait = tb.time_until(250, SimTime::ZERO);
        assert!((wait.as_secs_f64() - 0.25).abs() < 1e-9);
        assert_eq!(tb.time_until(0, SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn consume_paced_schedules_completion() {
        let mut tb = TokenBucket::new(1000.0, 1000.0);
        // First send uses the burst: completes immediately.
        assert_eq!(tb.consume_paced(1000, SimTime::ZERO), SimTime::ZERO);
        // Next 2000 bytes take 2 seconds to pay back.
        let done = tb.consume_paced(2000, SimTime::ZERO);
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-9);
        // A send issued at the payback instant is paced after it.
        let done2 = tb.consume_paced(1000, done);
        assert!((done2.as_secs_f64() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn paced_stream_achieves_configured_rate() {
        // 10 MB through a 1 MB/s limiter must finish in ~10 s.
        let mut tb = TokenBucket::new(1_000_000.0, 64_000.0);
        let mut now = SimTime::ZERO;
        for _ in 0..160 {
            now = tb.consume_paced(62_500, now);
        }
        assert!((9.8..10.2).contains(&now.as_secs_f64()), "{now}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        TokenBucket::new(0.0, 1.0);
    }
}
