//! TCP transport: the live migration protocol over real sockets.
//!
//! The paper's prototype speaks TCP between `blkd` processes on two
//! hosts; [`TcpTransport`] is the equivalent here — the same
//! [`crate::transport::Transport`] interface as the in-process
//! channel, but framed over a `std::net::TcpStream` using the
//! [`codec`](crate::codec), so a migration can genuinely cross process or
//! machine boundaries.

use std::io::BufWriter;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, TryRecvError};

use telemetry::{Recorder, Side};

use crate::codec::{read_frame_or_eof, write_frame};
use crate::proto::{MigMessage, TransferLedger};
use crate::transport::{SendStats, Transport, TransportError, WallLimiter};

/// How the reader thread ended: set exactly once, before the channel
/// disconnects, so receive paths can report *why* the stream is over.
#[derive(Debug, Clone)]
enum ReaderExit {
    /// Peer closed on a frame boundary: normal end of session.
    CleanEof,
    /// Mid-stream failure: truncated frame, decode error, socket error.
    Failed(String),
}

/// A duplex migration link over a TCP stream.
pub struct TcpTransport {
    writer: Mutex<BufWriter<TcpStream>>,
    incoming: Receiver<MigMessage>,
    reader_exit: Arc<Mutex<Option<ReaderExit>>>,
    sent: Arc<Mutex<TransferLedger>>,
    limiter: Option<Mutex<WallLimiter>>,
    telemetry: Mutex<Option<SendStats>>,
}

impl TcpTransport {
    /// Wrap a connected stream. Spawns a reader thread that decodes
    /// frames until the peer closes or the transport is dropped; whether
    /// the stream ended cleanly or mid-frame is recorded and surfaced by
    /// the receive methods as [`TransportError::Disconnected`] vs
    /// [`TransportError::Reset`].
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let mut read_half = stream.try_clone()?;
        let (tx, rx) = unbounded();
        let reader_exit: Arc<Mutex<Option<ReaderExit>>> = Arc::new(Mutex::new(None));
        let exit_slot = Arc::clone(&reader_exit);
        std::thread::spawn(move || {
            let exit = loop {
                match read_frame_or_eof(&mut read_half) {
                    Ok(Some(msg)) => {
                        if tx.send(msg).is_err() {
                            // Receiver dropped: our side ended the session.
                            break ReaderExit::CleanEof;
                        }
                    }
                    Ok(None) => break ReaderExit::CleanEof,
                    Err(e) => break ReaderExit::Failed(e.to_string()),
                }
            };
            // Record the verdict *before* dropping `tx`: a receiver that
            // observes the disconnect must find the reason already set.
            *exit_slot.lock() = Some(exit);
            drop(tx);
        });
        Ok(Self {
            // Sized to hold a full block batch (batch × 4 KiB) so small
            // control frames coalesce with data frames; `write_frame`
            // flushes per frame, and frames larger than the buffer
            // bypass it entirely (one contiguous write either way).
            writer: Mutex::new(BufWriter::with_capacity(256 * 1024, stream)),
            incoming: rx,
            reader_exit,
            sent: Arc::new(Mutex::new(TransferLedger::new())),
            limiter: None,
            telemetry: Mutex::new(None),
        })
    }

    /// The error a dead stream should surface: `Reset` with the recorded
    /// failure for a mid-stream death, `Disconnected` for a clean close.
    fn dead_stream_error(&self) -> TransportError {
        match &*self.reader_exit.lock() {
            Some(ReaderExit::Failed(why)) => TransportError::Reset(why.clone()),
            Some(ReaderExit::CleanEof) | None => TransportError::Disconnected,
        }
    }

    /// Connect to a listening peer.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// Pace all subsequent sends at `bytes_per_sec` of wall time.
    ///
    /// # Panics
    /// Panics when the rate is not strictly positive.
    pub fn set_rate_limit(&mut self, bytes_per_sec: f64) {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "rate must be positive"
        );
        self.limiter = Some(Mutex::new(WallLimiter::new(bytes_per_sec)));
    }
}

/// Create a connected pair over the loopback interface — the test/demo
/// equivalent of two hosts on the paper's Gigabit LAN.
pub fn loopback_pair() -> std::io::Result<(TcpTransport, TcpTransport)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let join = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
    let client = TcpStream::connect(addr)?;
    let server = join
        .join()
        .map_err(|_| std::io::Error::other("accept thread panicked"))??;
    Ok((TcpTransport::new(client)?, TcpTransport::new(server)?))
}

impl Transport for TcpTransport {
    fn send(&self, msg: MigMessage) -> Result<(), TransportError> {
        if let Some(l) = &self.limiter {
            l.lock().acquire(msg.wire_size());
        }
        self.sent.lock().record(&msg);
        if let Some(stats) = &*self.telemetry.lock() {
            stats.bytes.add(msg.wire_size());
            stats.msgs.inc();
        }
        let mut w = self.writer.lock();
        write_frame(&mut *w, &msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Result<MigMessage, TransportError> {
        self.incoming.recv().map_err(|_| self.dead_stream_error())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<MigMessage, TransportError> {
        self.incoming.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => self.dead_stream_error(),
        })
    }

    fn try_recv(&self) -> Result<MigMessage, TransportError> {
        self.incoming.try_recv().map_err(|e| match e {
            TryRecvError::Empty => TransportError::Empty,
            TryRecvError::Disconnected => self.dead_stream_error(),
        })
    }

    fn sent_ledger(&self) -> TransferLedger {
        self.sent.lock().clone()
    }

    fn shutdown(&self) {
        let w = self.writer.lock();
        sever(w.get_ref());
    }

    fn set_telemetry(&self, recorder: &Arc<Recorder>, side: Side) {
        *self.telemetry.lock() = SendStats::register(recorder, side);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // The reader thread holds a clone of the socket; without an
        // explicit shutdown the connection would stay half-open and the
        // peer would never observe EOF.
        let w = self.writer.lock();
        sever(w.get_ref());
    }
}

/// Close both halves of the socket. `Err` here means the peer (or a
/// prior `shutdown()` call) already closed it — the state we wanted —
/// so it is handled by naming it, not silently discarded.
fn sever(stream: &std::net::TcpStream) {
    match stream.shutdown(std::net::Shutdown::Both) {
        Ok(()) => {}
        Err(_already_closed) => {}
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rate_limited", &self.limiter.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Category;
    use bytes::Bytes;

    #[test]
    fn loopback_roundtrip() {
        let (a, b) = loopback_pair().expect("loopback");
        a.send(MigMessage::Suspended).expect("send");
        assert_eq!(b.recv().expect("recv"), MigMessage::Suspended);
        b.send(MigMessage::Resumed).expect("send");
        assert_eq!(a.recv().expect("recv"), MigMessage::Resumed);
    }

    #[test]
    fn payloads_cross_intact() {
        let (a, b) = loopback_pair().expect("loopback");
        let payload = Bytes::from(
            (0..8192u32)
                .flat_map(|x| x.to_le_bytes())
                .collect::<Vec<_>>(),
        );
        let msg = MigMessage::DiskBlocks {
            blocks: (0..8).collect(),
            payload_len: payload.len() as u64,
            payload: Some(payload.clone()),
        };
        a.send(msg.clone()).expect("send");
        assert_eq!(b.recv().expect("recv"), msg);
        assert_eq!(a.sent_ledger().get(Category::DiskPrecopy), msg.wire_size());
    }

    #[test]
    fn ordering_preserved_under_load() {
        let (a, b) = loopback_pair().expect("loopback");
        let t = std::thread::spawn(move || {
            for i in 0..1000u64 {
                a.send(MigMessage::PullRequest { block: i }).expect("send");
            }
        });
        for i in 0..1000u64 {
            assert_eq!(
                b.recv().expect("recv"),
                MigMessage::PullRequest { block: i }
            );
        }
        t.join().expect("sender");
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = loopback_pair().expect("loopback");
        drop(b);
        // The reader thread sees EOF; recv eventually reports disconnect.
        assert_eq!(a.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn truncated_frame_surfaces_as_reset() {
        use std::io::Write;
        // Hand-roll the peer so we can kill it mid-frame: write a length
        // prefix promising 100 bytes, deliver 3, then sever the socket.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let join = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            s.write_all(&100u32.to_le_bytes()).expect("prefix");
            s.write_all(&[1, 2, 3]).expect("partial body");
            s.shutdown(std::net::Shutdown::Both).expect("sever");
        });
        let a = TcpTransport::connect(&addr.to_string()).expect("connect");
        join.join().expect("peer thread");
        match a.recv() {
            Err(TransportError::Reset(why)) => {
                assert!(why.contains("truncated"), "diagnosis lost: {why}")
            }
            other => panic!("expected Reset for a truncated frame, got {other:?}"),
        }
        // The verdict is sticky: later receives report the same failure.
        assert!(matches!(a.try_recv(), Err(TransportError::Reset(_))));
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Reset(_))
        ));
    }

    #[test]
    fn local_shutdown_severs_both_directions() {
        let (a, b) = loopback_pair().expect("loopback");
        Transport::shutdown(&a);
        // The peer sees a clean close (shutdown flushes the FIN).
        assert!(b.recv().is_err());
        assert!(a.send(MigMessage::Suspended).is_err());
    }

    #[test]
    fn timeout_and_try_recv() {
        let (a, _b) = loopback_pair().expect("loopback");
        assert_eq!(a.try_recv(), Err(TransportError::Empty));
        assert_eq!(
            a.recv_timeout(Duration::from_millis(20)),
            Err(TransportError::Timeout)
        );
    }
}
