//! Live-mode transport: duplex message channels between two host threads.
//!
//! Live (threaded) migration runs the source and destination protocol
//! engines on real threads; this module gives them a duplex link built on
//! crossbeam channels, with the same per-category byte accounting as the
//! simulated link and an optional wall-clock rate limiter for the §VI-C-3
//! throttling experiments.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use telemetry::{Recorder, Side};

use crate::proto::{MigMessage, TransferLedger};

/// Send-path counters registered under a side-specific prefix. Cloned out
/// of the registry once on attach, so the hot path only does relaxed
/// atomic adds.
#[derive(Debug, Clone)]
pub(crate) struct SendStats {
    pub(crate) bytes: telemetry::Counter,
    pub(crate) msgs: telemetry::Counter,
}

impl SendStats {
    /// Register (or look up) the side's counters; `None` when telemetry is
    /// disabled, so instrumented transports skip the accounting entirely.
    pub(crate) fn register(recorder: &Recorder, side: Side) -> Option<Self> {
        if !recorder.is_enabled() {
            return None;
        }
        let prefix = match side {
            Side::Source => "transport.src",
            Side::Destination => "transport.dst",
        };
        Some(Self {
            bytes: recorder.metrics().counter(&format!("{prefix}.bytes_sent")),
            msgs: recorder.metrics().counter(&format!("{prefix}.msgs_sent")),
        })
    }
}

/// Errors surfaced by [`Endpoint`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint shut down cleanly (EOF at a frame boundary).
    Disconnected,
    /// The connection failed mid-stream: an I/O error, a frame truncated
    /// short of its declared length, or an injected fault. Unlike
    /// [`TransportError::Disconnected`], this is never a normal shutdown;
    /// recovery means reconnecting and resuming from the bitmap.
    Reset(String),
    /// No message arrived within the timeout.
    Timeout,
    /// No message is currently queued (non-blocking receive).
    Empty,
}

impl TransportError {
    /// True for the failures that end a connection ([`Self::Disconnected`]
    /// and [`Self::Reset`]) rather than a single receive attempt.
    pub fn is_fatal(&self) -> bool {
        matches!(self, Self::Disconnected | Self::Reset(_))
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Disconnected => write!(f, "peer endpoint disconnected"),
            Self::Reset(why) => write!(f, "connection reset mid-stream: {why}"),
            Self::Timeout => write!(f, "receive timed out"),
            Self::Empty => write!(f, "no message queued"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Wall-clock token bucket used to pace live-mode sends.
#[derive(Debug)]
pub(crate) struct WallLimiter {
    rate: f64,
    tokens: f64,
    burst: f64,
    last: Instant,
}

impl WallLimiter {
    pub(crate) fn new(rate: f64) -> Self {
        // One tenth of a second of burst keeps pacing smooth without
        // letting large sends bypass the limit.
        let burst = (rate * 0.1).max(1.0);
        Self {
            rate,
            tokens: burst,
            burst,
            last: Instant::now(),
        }
    }

    /// Block until `bytes` may pass.
    pub(crate) fn acquire(&mut self, bytes: u64) {
        let now = Instant::now();
        self.tokens =
            (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate).min(self.burst);
        self.last = now;
        self.tokens -= bytes as f64;
        if self.tokens < 0.0 {
            let wait = Duration::from_secs_f64(-self.tokens / self.rate);
            std::thread::sleep(wait);
            self.last = Instant::now();
            self.tokens = 0.0;
        }
    }
}

/// A duplex migration message channel: the interface both the in-process
/// ([`Endpoint`]) and TCP ([`crate::tcp::TcpTransport`]) links implement,
/// so protocol engines are transport-agnostic.
pub trait Transport: Send {
    /// Send a message (blocking for pacing when rate-limited).
    fn send(&self, msg: MigMessage) -> Result<(), TransportError>;

    /// Blocking receive.
    fn recv(&self) -> Result<MigMessage, TransportError>;

    /// Receive with a wall-clock timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<MigMessage, TransportError>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Result<MigMessage, TransportError>;

    /// Snapshot of bytes sent from this side, by category.
    fn sent_ledger(&self) -> TransferLedger;

    /// Tear the connection down immediately (both directions). Used by
    /// fault injection to sever a link mid-stream; the default is a no-op
    /// for transports with no independent lifetime.
    fn shutdown(&self) {}

    /// Attach a telemetry recorder: subsequent sends count bytes and
    /// messages into side-scoped counters, and instrumented wrappers (the
    /// fault injector) journal their events into it. The default is a
    /// no-op so bare test transports need no instrumentation.
    fn set_telemetry(&self, _recorder: &Arc<Recorder>, _side: Side) {}
}

/// One side of a duplex migration link.
pub struct Endpoint {
    tx: Sender<MigMessage>,
    rx: Receiver<MigMessage>,
    sent: Arc<Mutex<TransferLedger>>,
    limiter: Option<Mutex<WallLimiter>>,
    telemetry: Mutex<Option<SendStats>>,
}

/// Create a connected pair of endpoints.
pub fn duplex() -> (Endpoint, Endpoint) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    let mk = |tx, rx| Endpoint {
        tx,
        rx,
        sent: Arc::new(Mutex::new(TransferLedger::new())),
        limiter: None,
        telemetry: Mutex::new(None),
    };
    (mk(a_tx, a_rx), mk(b_tx, b_rx))
}

impl Endpoint {
    /// Pace all subsequent sends at `bytes_per_sec` of wall time.
    ///
    /// # Panics
    /// Panics when the rate is not strictly positive.
    pub fn set_rate_limit(&mut self, bytes_per_sec: f64) {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "rate must be positive"
        );
        self.limiter = Some(Mutex::new(WallLimiter::new(bytes_per_sec)));
    }

    /// Send a message, blocking for pacing when a rate limit is set.
    pub fn send(&self, msg: MigMessage) -> Result<(), TransportError> {
        if let Some(l) = &self.limiter {
            l.lock().acquire(msg.wire_size());
        }
        self.sent.lock().record(&msg);
        if let Some(stats) = &*self.telemetry.lock() {
            stats.bytes.add(msg.wire_size());
            stats.msgs.inc();
        }
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<MigMessage, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    /// Receive with a wall-clock timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<MigMessage, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<MigMessage, TransportError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => TransportError::Empty,
            TryRecvError::Disconnected => TransportError::Disconnected,
        })
    }

    /// Snapshot of bytes sent from this endpoint, by category.
    pub fn sent_ledger(&self) -> TransferLedger {
        self.sent.lock().clone()
    }
}

impl Transport for Endpoint {
    fn send(&self, msg: MigMessage) -> Result<(), TransportError> {
        Endpoint::send(self, msg)
    }
    fn recv(&self) -> Result<MigMessage, TransportError> {
        Endpoint::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> Result<MigMessage, TransportError> {
        Endpoint::recv_timeout(self, timeout)
    }
    fn try_recv(&self) -> Result<MigMessage, TransportError> {
        Endpoint::try_recv(self)
    }
    fn sent_ledger(&self) -> TransferLedger {
        Endpoint::sent_ledger(self)
    }

    fn set_telemetry(&self, recorder: &Arc<Recorder>, side: Side) {
        *self.telemetry.lock() = SendStats::register(recorder, side);
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rate_limited", &self.limiter.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Category;

    #[test]
    fn roundtrip_between_threads() {
        let (a, b) = duplex();
        let t = std::thread::spawn(move || {
            let msg = b.recv().unwrap();
            assert_eq!(msg, MigMessage::Suspended);
            b.send(MigMessage::Resumed).unwrap();
        });
        a.send(MigMessage::Suspended).unwrap();
        assert_eq!(a.recv().unwrap(), MigMessage::Resumed);
        t.join().unwrap();
    }

    #[test]
    fn ledger_counts_sends() {
        let (a, _b) = duplex();
        a.send(MigMessage::PullRequest { block: 3 }).unwrap();
        a.send(MigMessage::PullRequest { block: 4 }).unwrap();
        let ledger = a.sent_ledger();
        assert_eq!(
            ledger.get(Category::DiskPull),
            2 * MigMessage::PullRequest { block: 0 }.wire_size()
        );
    }

    #[test]
    fn disconnect_reported() {
        let (a, b) = duplex();
        drop(b);
        assert_eq!(
            a.send(MigMessage::Suspended),
            Err(TransportError::Disconnected)
        );
        assert_eq!(a.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn try_recv_empty() {
        let (a, b) = duplex();
        assert_eq!(a.try_recv(), Err(TransportError::Empty));
        b.send(MigMessage::PrepareAck).unwrap();
        assert_eq!(a.try_recv(), Ok(MigMessage::PrepareAck));
    }

    #[test]
    fn recv_timeout_fires() {
        let (a, _b) = duplex();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn rate_limit_paces_throughput() {
        let (mut a, b) = duplex();
        // 1 MB/s; send ~0.3 MB => at least ~0.2 s (minus the 0.1 s burst).
        a.set_rate_limit(1_000_000.0);
        let start = Instant::now();
        for i in 0..75 {
            a.send(MigMessage::DiskBlocks {
                blocks: vec![i],
                payload_len: 4096,
                payload: None,
            })
            .unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(150),
            "sent too fast: {elapsed:?}"
        );
        drop(b);
    }
}
