//! Property tests for the network substrate: codec totality, capacity
//! sharing invariants, token-bucket conservation, and seeded-chaos
//! fault-plan determinism.

use std::time::Duration;

use bytes::Bytes;
use des::{SimDuration, SimTime};
use proptest::prelude::*;
use simnet::capacity::{max_min_share, seek_aware_share};
use simnet::codec::{decode, encode, read_frame, write_frame};
use simnet::fault::{faulty_pair, FaultPlan};
use simnet::proto::MigMessage;
use simnet::transport::{duplex, Transport, TransportError};
use simnet::TokenBucket;

fn arb_message() -> impl Strategy<Value = MigMessage> {
    let bytes = prop::collection::vec(any::<u8>(), 0..512).prop_map(Bytes::from);
    let opt_bytes = prop::option::of(bytes.clone());
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(block_size, num_blocks)| {
            MigMessage::PrepareVbd {
                block_size,
                num_blocks,
            }
        }),
        Just(MigMessage::PrepareAck),
        (
            prop::collection::vec(any::<u64>(), 0..50),
            any::<u64>(),
            opt_bytes.clone()
        )
            .prop_map(|(blocks, payload_len, payload)| MigMessage::DiskBlocks {
                blocks,
                payload_len,
                payload,
            }),
        (
            prop::collection::vec(any::<u64>(), 0..50),
            any::<u64>(),
            opt_bytes.clone()
        )
            .prop_map(|(pages, payload_len, payload)| MigMessage::MemPages {
                pages,
                payload_len,
                payload,
            }),
        (any::<u64>(), opt_bytes.clone()).prop_map(|(payload_len, payload)| {
            MigMessage::CpuState {
                payload_len,
                payload,
            }
        }),
        bytes.prop_map(|encoded| MigMessage::Bitmap { encoded }),
        Just(MigMessage::Suspended),
        Just(MigMessage::Resumed),
        any::<u64>().prop_map(|block| MigMessage::PullRequest { block }),
        (any::<u64>(), any::<bool>(), any::<u64>(), opt_bytes).prop_map(
            |(block, pulled, payload_len, payload)| MigMessage::PostCopyBlock {
                block,
                pulled,
                payload_len,
                payload,
            }
        ),
        Just(MigMessage::PushComplete),
        Just(MigMessage::MigrationComplete),
    ]
}

proptest! {
    /// Every encodable message decodes back to itself.
    #[test]
    fn codec_roundtrip(msg in arb_message()) {
        let enc = encode(&msg);
        prop_assert_eq!(decode(&enc).expect("decode"), msg);
    }

    /// Framed sequences round-trip over a byte stream.
    #[test]
    fn framing_roundtrip(msgs in prop::collection::vec(arb_message(), 1..10)) {
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).expect("write");
        }
        let mut cursor = std::io::Cursor::new(wire);
        for expected in &msgs {
            prop_assert_eq!(&read_frame(&mut cursor).expect("read"), expected);
        }
    }

    /// Truncation is always detected, never mis-decoded.
    #[test]
    fn codec_rejects_truncation(msg in arb_message(), cut in 1usize..16) {
        let enc = encode(&msg);
        if enc.len() > cut {
            let truncated = &enc[..enc.len() - cut];
            // Either an error, or (never) a different message.
            if let Ok(m) = decode(truncated) {
                prop_assert_eq!(m, msg); // unreachable in practice
            }
        }
    }

    /// Max-min allocations never exceed capacity or individual demand,
    /// and are work-conserving (full capacity used when demand suffices).
    #[test]
    fn max_min_invariants(
        capacity in 0.0f64..1_000.0,
        demands in prop::collection::vec(0.0f64..500.0, 0..8),
    ) {
        let alloc = max_min_share(capacity, &demands);
        let total: f64 = alloc.iter().sum();
        prop_assert!(total <= capacity + 1e-6);
        let total_demand: f64 = demands.iter().sum();
        for (a, d) in alloc.iter().zip(&demands) {
            prop_assert!(*a <= d + 1e-9);
            prop_assert!(*a >= 0.0);
        }
        if total_demand >= capacity {
            prop_assert!((total - capacity).abs() < 1e-6, "not work-conserving");
        } else {
            prop_assert!((total - total_demand).abs() < 1e-6);
        }
    }

    /// More capacity never hurts anyone: raising the pool capacity leaves
    /// every individual allocation the same or larger (max-min fairness
    /// is monotone in capacity).
    #[test]
    fn max_min_monotone_in_capacity(
        capacity in 0.0f64..1_000.0,
        extra in 0.0f64..1_000.0,
        demands in prop::collection::vec(0.0f64..500.0, 0..8),
    ) {
        let lo = max_min_share(capacity, &demands);
        let hi = max_min_share(capacity + extra, &demands);
        for (i, (a, b)) in lo.iter().zip(&hi).enumerate() {
            prop_assert!(
                *b >= a - 1e-6,
                "demand {i} shrank from {a} to {b} when capacity grew"
            );
        }
    }

    /// Fairness is order-independent: permuting the demand vector permutes
    /// the allocations identically (no flow is favoured by its position).
    /// Rotations and reversal generate the permutation group's evidence.
    #[test]
    fn max_min_order_independent(
        capacity in 0.0f64..1_000.0,
        demands in prop::collection::vec(0.0f64..500.0, 1..8),
        rot in 0usize..8,
        rev in any::<bool>(),
    ) {
        let base = max_min_share(capacity, &demands);
        let rot = rot % demands.len();
        let mut permuted = demands.clone();
        permuted.rotate_left(rot);
        if rev {
            permuted.reverse();
        }
        let mut expected = base.clone();
        expected.rotate_left(rot);
        if rev {
            expected.reverse();
        }
        let got = max_min_share(capacity, &permuted);
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            prop_assert!(
                (e - g).abs() < 1e-6,
                "slot {i}: permuted allocation {g} != expected {e}"
            );
        }
    }

    /// Degenerate inputs never panic and never manufacture capacity: the
    /// no-panic-zone contract of the orchestrator's hot loop.
    #[test]
    fn max_min_total_on_degenerate_inputs(
        capacity in prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            -1_000.0f64..1_000.0,
        ],
        demands in prop::collection::vec(
            prop_oneof![
                Just(f64::NAN),
                Just(f64::INFINITY),
                -500.0f64..500.0,
            ],
            0..6,
        ),
    ) {
        let alloc = max_min_share(capacity, &demands);
        prop_assert_eq!(alloc.len(), demands.len());
        for (a, d) in alloc.iter().zip(&demands) {
            prop_assert!(*a >= 0.0, "negative allocation {a}");
            prop_assert!(!a.is_nan(), "NaN allocation for demand {d}");
        }
        if capacity.is_finite() {
            let total: f64 = alloc.iter().sum();
            prop_assert!(total <= capacity.max(0.0) + 1e-6);
        }
    }

    /// Seek-aware sharing degrades gracefully: allocations are bounded by
    /// demands and by the zero-interference capacity.
    #[test]
    fn seek_aware_invariants(
        c0 in 1.0f64..500.0,
        penalty in 0.0f64..3.0,
        w in 0.0f64..400.0,
        m in 0.0f64..400.0,
    ) {
        let (ws, ms) = seek_aware_share(c0, penalty, w, m);
        prop_assert!(ws >= -1e-9 && ms >= -1e-9);
        prop_assert!(ws <= w + 1e-6);
        prop_assert!(ms <= m + 1e-6);
        // Together they never exceed the uncontended capacity.
        prop_assert!(ws + ms <= c0 + 1e-6);
    }

    /// A token bucket never releases more than rate*time + burst bytes.
    #[test]
    fn token_bucket_conservation(
        rate in 1.0f64..1e6,
        burst in 1.0f64..1e6,
        requests in prop::collection::vec((0u64..10_000, 0u64..1_000_000), 1..50),
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut granted = 0u64;
        let mut now = SimTime::ZERO;
        let mut latest = 0u64;
        for (dt_us, bytes) in requests {
            now += SimDuration::from_micros(dt_us);
            latest = latest.max(now.as_nanos());
            if tb.try_consume(bytes, now) {
                granted += bytes;
            }
        }
        let elapsed_secs = latest as f64 / 1e9;
        prop_assert!(
            granted as f64 <= rate * elapsed_secs + burst + 1.0,
            "granted {granted} exceeds rate*t+burst"
        );
    }

    /// Seeded chaos is a pure function of its seed: two plans built with
    /// one seed are identical, and two identical runs under that plan
    /// observe the identical fault sequence (the same frames drop).
    #[test]
    fn seeded_chaos_same_seed_same_fault_sequence(
        seed in any::<u64>(),
        messages in 1u64..200,
        drop_permille in 0u32..300,
    ) {
        let plan = FaultPlan::seeded_chaos(seed, 1, messages, drop_permille, 0, Duration::ZERO);
        prop_assert_eq!(
            &plan,
            &FaultPlan::seeded_chaos(seed, 1, messages, drop_permille, 0, Duration::ZERO)
        );
        // Replay the same send sequence twice; the delivered subsequence
        // (which frames survived the lossy link) must match exactly.
        let mut runs: Vec<Vec<u64>> = Vec::new();
        for _ in 0..2 {
            let (a, b) = duplex();
            let (a, b) = faulty_pair(a, b, &plan, 0);
            for i in 0..messages {
                a.send(MigMessage::PullRequest { block: i }).expect("lossy send still succeeds");
            }
            let mut got = Vec::new();
            loop {
                match b.try_recv() {
                    Ok(MigMessage::PullRequest { block }) => got.push(block),
                    Ok(other) => prop_assert!(false, "unexpected message {other:?}"),
                    Err(TransportError::Empty) => break,
                    Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                }
            }
            runs.push(got);
        }
        prop_assert_eq!(&runs[0], &runs[1], "one seed, one delivery sequence");
        let dropped = messages - runs[0].len() as u64;
        prop_assert_eq!(dropped as usize, plan.faults.len(), "every armed drop fires exactly once");
    }
}
