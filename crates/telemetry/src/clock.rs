//! The dual-clock model: one event taxonomy, two time sources.
//!
//! The simulated engine runs on deterministic virtual time (`des::SimTime`,
//! a plain nanosecond counter), the live engine on the machine's monotonic
//! clock. A journal record carries its timestamp as raw `u64` nanoseconds
//! plus a [`ClockDomain`] tag saying which clock produced it, so consumers
//! can reconstruct spans without caring which engine ran — but never
//! accidentally mix the two domains in one subtraction.

use serde::{Deserialize, Serialize};

/// Which clock stamped a journal record.
///
/// * [`ClockDomain::Sim`] — deterministic virtual time: the nanosecond value
///   of `des::SimTime` at the instant the event was recorded. Bit-exact
///   across runs under the same seed.
/// * [`ClockDomain::Wall`] — monotonic wall time: nanoseconds since the
///   [`Recorder`](crate::Recorder)'s epoch (the instant the recorder was
///   created). Spans between two wall records are exact `Instant`
///   differences; absolute values are only meaningful relative to the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockDomain {
    /// Virtual time from the discrete-event simulator.
    Sim,
    /// Monotonic wall time relative to the recorder epoch.
    Wall,
}
