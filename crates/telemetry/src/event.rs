//! The typed event taxonomy shared by the simulated and live engines.
//!
//! Every variant models one observable step of the paper's Three-Phase
//! Migration: phase transitions (§IV), pre-copy iteration stats (§IV-B),
//! bitmap snapshot/encoding sizes (§IV-A), transport-level reconnects and
//! injected faults (DESIGN.md §9), and the §III-A post-copy block events —
//! push, pull, drop, and the write-cancellation rule.
//!
//! Shapes are deliberately plain (unit and named-struct variants, `u64`
//! numeric fields) so the vendored serde derive round-trips them through
//! JSONL without attributes.

use serde::{Deserialize, Serialize};

use crate::clock::ClockDomain;

/// Which side of the migration recorded the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// The host the VM is migrating away from.
    Source,
    /// The host the VM is migrating to.
    Destination,
}

/// The paper's §IV phase structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Iterative disk pre-copy under the block-bitmap.
    DiskPrecopy,
    /// Xen-style iterative memory pre-copy.
    MemPrecopy,
    /// Freeze-and-copy: the VM is suspended; the span is the downtime.
    Freeze,
    /// Push-and-pull post-copy after the VM resumed on the destination.
    PostCopy,
}

/// What a pre-copy iteration moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resource {
    /// Disk blocks (the block-bitmap's unit).
    Disk,
    /// Guest memory pages.
    Memory,
}

/// An injected transport fault, by kind.
///
/// Mirrors `simnet::fault::FaultKind` without its payloads, so it stays
/// within the journal's serializable shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultLabel {
    /// Connection severed; queued data lost.
    Reset,
    /// Transport wedged for a while, then recovered.
    Stall,
    /// Send reported success but the frame was lost.
    Truncate,
    /// A lossy link dropped the frame in flight; the connection
    /// survived.
    Drop,
}

/// One observable step of a migration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A §IV phase began on `side`.
    PhaseStart {
        /// Recording side.
        side: Side,
        /// Which phase began.
        phase: Phase,
    },
    /// A §IV phase ended on `side`.
    PhaseEnd {
        /// Recording side.
        side: Side,
        /// Which phase ended.
        phase: Phase,
    },
    /// A pre-copy iteration finished.
    Iteration {
        /// Recording side.
        side: Side,
        /// Disk blocks or memory pages.
        resource: Resource,
        /// Zero-based iteration index.
        index: u64,
        /// Units (blocks/pages) shipped this iteration.
        units_sent: u64,
        /// Units dirtied while the iteration ran (the next worklist).
        dirty_at_end: u64,
    },
    /// The dirty bitmap was snapshotted (and cleared) between iterations.
    BitmapSnapshot {
        /// Recording side.
        side: Side,
        /// Bits set in the snapshot.
        set_bits: u64,
    },
    /// The frozen bitmap was encoded for the wire (§IV-C ships the bitmap,
    /// never the blocks).
    BitmapEncoded {
        /// Bits set in the encoded bitmap.
        set_bits: u64,
        /// Encoded wire size in bytes.
        encoded_bytes: u64,
    },
    /// The guest was suspended — downtime starts here.
    Suspended {
        /// Recording side.
        side: Side,
    },
    /// The guest resumed — downtime ends here.
    Resumed {
        /// Recording side.
        side: Side,
    },
    /// A protocol thread reconnected after a transport failure.
    Reconnect {
        /// Recording side.
        side: Side,
        /// One-based reconnect attempt number.
        attempt: u64,
    },
    /// The fault plan fired on a send.
    FaultInjected {
        /// Kind of fault injected.
        fault: FaultLabel,
        /// Messages sent on this transport before the fault fired.
        messages_before: u64,
    },
    /// Cumulative bytes a side has put on the wire (ledger total).
    TransportBytes {
        /// Recording side.
        side: Side,
        /// Cumulative bytes sent.
        bytes: u64,
    },
    /// The destination requested a dirty block a guest read touched.
    PullRequested {
        /// Block index.
        block: u64,
    },
    /// A pushed block arrived while still wanted and was applied.
    BlockPushed {
        /// Block index.
        block: u64,
    },
    /// A pulled block arrived while still wanted and was applied.
    BlockPulled {
        /// Block index.
        block: u64,
    },
    /// An arriving block was superseded (bit already clear) and discarded.
    BlockDropped {
        /// Block index.
        block: u64,
    },
    /// §III-A cancellation: a destination guest write to a still-dirty block
    /// cancelled its synchronization outright.
    SyncCancelled {
        /// Block index.
        block: u64,
    },
    /// A cluster migration passed admission control and its stream was
    /// created (orchestrator journal, virtual time).
    MigrationAdmitted {
        /// Orchestrator-wide migration id.
        migration: u64,
        /// VM being moved.
        vm: u64,
        /// Source host.
        src: u64,
        /// Destination host.
        dst: u64,
        /// `true` when the destination held a usable stale replica, so
        /// the first pass ships only the bitmap diff (§V incremental).
        incremental: bool,
        /// Blocks in the first-pass worklist.
        first_pass_blocks: u64,
    },
    /// A §IV phase began for one cluster migration.
    MigrationPhaseStart {
        /// Orchestrator-wide migration id.
        migration: u64,
        /// Which phase began.
        phase: Phase,
    },
    /// A §IV phase ended for one cluster migration.
    MigrationPhaseEnd {
        /// Orchestrator-wide migration id.
        migration: u64,
        /// Which phase ended.
        phase: Phase,
    },
    /// A cluster migration's stream was cut by an injected fault and the
    /// orchestrator is retrying it, resuming from the block-bitmap.
    MigrationRetry {
        /// Orchestrator-wide migration id.
        migration: u64,
        /// One-based retry attempt number.
        attempt: u64,
    },
    /// A multi-source fetch plan was computed over an owed worklist
    /// (blockstore data plane).
    FetchPlanned {
        /// Recording side.
        side: Side,
        /// Owed full blocks routed to the migration source.
        source_blocks: u64,
        /// Owed full blocks routed to peer holders.
        peer_blocks: u64,
        /// Owed blocks satisfied by content already resident at the
        /// destination (no bytes move).
        ref_blocks: u64,
        /// Peer holders with at least one assigned block.
        peers: u64,
    },
    /// One peer-fetch session finished (blockstore data plane).
    PeerFetch {
        /// Recording side.
        side: Side,
        /// Peer host the session pulled from.
        peer: u64,
        /// Blocks verified and applied from this peer.
        blocks: u64,
        /// Payload bytes applied from this peer.
        bytes: u64,
    },
    /// The source died with its reconnect budget exhausted and the
    /// destination re-planned against the block directory to complete
    /// the migration from surviving holders.
    SourceFailover {
        /// Recording side.
        side: Side,
        /// Blocks still owed when the source was declared dead.
        owed_blocks: u64,
        /// Surviving holders the re-plan drew from.
        peers: u64,
    },
    /// The fleet network split into disconnected islands (scenario
    /// timeline, virtual time). Hosts in different islands cannot
    /// exchange migration traffic until a `PartitionHealed`.
    PartitionStarted {
        /// Number of islands the partition produced.
        islands: u64,
    },
    /// The network partition healed; full connectivity restored.
    PartitionHealed {
        /// Migrations that were stranded when the heal arrived.
        stranded: u64,
    },
    /// A host left the fleet (crash or maintenance dwell).
    HostDown {
        /// Host index.
        host: u64,
    },
    /// A host rejoined the fleet.
    HostUp {
        /// Host index.
        host: u64,
    },
    /// A link's bandwidth was degraded (WAN weather, rate clamp).
    LinkDegraded {
        /// One endpoint host.
        a: u64,
        /// Other endpoint host.
        b: u64,
        /// New bandwidth ceiling on the link, bytes/second.
        bandwidth: u64,
    },
    /// A degraded link returned to its configured bandwidth.
    LinkRestored {
        /// One endpoint host.
        a: u64,
        /// Other endpoint host.
        b: u64,
    },
    /// A VM's workload crossed a cycle boundary (scenario workload
    /// phases — Baruchi-style activity cycles).
    WorkloadPhase {
        /// VM index.
        vm: u64,
        /// `true` when the VM entered its low-activity phase.
        low: bool,
    },
    /// A maintenance wave began draining a host: the host is cordoned
    /// (no new inbound migrations) and its residents are evacuated.
    MaintenanceStarted {
        /// Host index.
        host: u64,
        /// Resident VMs queued for evacuation.
        evacuating: u64,
    },
    /// A maintenance dwell finished; the host is back in service.
    MaintenanceEnded {
        /// Host index.
        host: u64,
    },
    /// A partition or host-down stranded an in-flight migration: its
    /// source became unreachable from the destination.
    MigrationStranded {
        /// Orchestrator-wide migration id.
        migration: u64,
    },
    /// A stranded migration re-planned against the block directory and
    /// is now fed by a reachable peer replica holder.
    MigrationPeerFed {
        /// Orchestrator-wide migration id.
        migration: u64,
        /// Peer host serving the fresh blocks.
        peer: u64,
        /// Owed blocks the peer can serve at the live generation.
        servable: u64,
    },
    /// A stranded migration's source became reachable again; the stream
    /// resumed from its block-bitmap after re-shipping it.
    MigrationReconnected {
        /// Orchestrator-wide migration id.
        migration: u64,
        /// Encoded worklist bitmap bytes re-shipped on resume.
        bitmap_bytes: u64,
    },
    /// A cluster migration finished.
    MigrationCompleted {
        /// Orchestrator-wide migration id.
        migration: u64,
        /// Total wire bytes the stream moved (all attempts).
        bytes: u64,
        /// Fault-triggered retries the stream survived.
        retries: u64,
        /// `false` when the retry budget ran out and the VM stayed put.
        completed: bool,
    },
}

/// One journal entry: a sequence number (total order of recording), a
/// timestamp in its [`ClockDomain`], and the [`Event`].
///
/// `seq` is assigned under the journal lock, so it is the canonical
/// happened-before order of the journal even when timestamps tie or when
/// multiple threads record concurrently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Journal-order sequence number (dense from 0 unless records dropped).
    pub seq: u64,
    /// Timestamp in nanoseconds; meaning depends on `clock`.
    pub t_nanos: u64,
    /// Which clock produced `t_nanos`.
    pub clock: ClockDomain,
    /// The recorded event.
    pub event: Event,
}
