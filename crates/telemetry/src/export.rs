//! Exporters: JSONL journal, phase-timing reconstruction, human-readable
//! phase summary, and metrics JSON.
//!
//! The reconstruction arithmetic here is deliberately identical to the
//! engines' own accounting: a span is `(end_nanos - start_nanos) as f64 /
//! 1e9`, the exact expression behind `SimDuration::as_secs_f64`, so a
//! journal-reconstructed [`PhaseDurations`] equals a simulated run's
//! `MigrationReport.phases` bit for bit — the two accounting paths cannot
//! silently diverge.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::event::{Event, Phase, Record, Resource, Side};
use crate::metrics::Registry;

/// Serialize records as one JSON object per line (JSONL).
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        // Serialization of a Record cannot fail (string keys only); a
        // defective record is skipped rather than panicking an exporter.
        if let Ok(line) = serde_json::to_string(r) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parse a JSONL journal back into records. Blank lines are ignored;
/// the first malformed line aborts with a description.
pub fn from_jsonl(s: &str) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Record>(line) {
            Ok(r) => out.push(r),
            Err(e) => return Err(format!("journal line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

/// Phase durations reconstructed from span events — the journal's answer
/// to `migrate`'s `PhaseTimings`, field for field.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseDurations {
    /// Iterative disk pre-copy (§IV-B1).
    pub disk_precopy_secs: f64,
    /// Iterative memory pre-copy (§IV-B2).
    pub mem_precopy_secs: f64,
    /// Freeze-and-copy — the downtime (§IV-C).
    pub freeze_secs: f64,
    /// Push-and-pull post-copy (§IV-D).
    pub postcopy_secs: f64,
}

/// Nanoseconds between the first `PhaseStart` and the last `PhaseEnd`
/// recorded for `phase`, or `None` when the span is incomplete.
///
/// Taking the *last* end makes reconnect-interrupted live phases span
/// their full extent; in a simulated journal each phase starts and ends
/// exactly once.
pub fn phase_span_nanos(records: &[Record], phase: Phase) -> Option<u64> {
    let mut start = None;
    let mut end = None;
    for r in records {
        match &r.event {
            Event::PhaseStart { phase: p, .. } if *p == phase && start.is_none() => {
                start = Some(r.t_nanos);
            }
            Event::PhaseEnd { phase: p, .. } if *p == phase => end = Some(r.t_nanos),
            _ => {}
        }
    }
    match (start, end) {
        (Some(s), Some(e)) => Some(e.saturating_sub(s)),
        _ => None,
    }
}

/// Reconstruct per-phase durations from span events. Missing spans read
/// as zero (matching `PhaseTimings::default()` for phases that never ran).
pub fn reconstruct_phases(records: &[Record]) -> PhaseDurations {
    let secs = |p: Phase| phase_span_nanos(records, p).unwrap_or(0) as f64 / 1e9;
    PhaseDurations {
        disk_precopy_secs: secs(Phase::DiskPrecopy),
        mem_precopy_secs: secs(Phase::MemPrecopy),
        freeze_secs: secs(Phase::Freeze),
        postcopy_secs: secs(Phase::PostCopy),
    }
}

/// Nanoseconds between the first `MigrationPhaseStart` and the last
/// `MigrationPhaseEnd` recorded for cluster migration `migration` in
/// `phase`, or `None` when the span is incomplete — the per-migration
/// analogue of [`phase_span_nanos`] for orchestrator journals.
pub fn migration_phase_span_nanos(records: &[Record], migration: u64, phase: Phase) -> Option<u64> {
    let mut start = None;
    let mut end = None;
    for r in records {
        match &r.event {
            Event::MigrationPhaseStart {
                migration: m,
                phase: p,
            } if *m == migration && *p == phase && start.is_none() => {
                start = Some(r.t_nanos);
            }
            Event::MigrationPhaseEnd {
                migration: m,
                phase: p,
            } if *m == migration && *p == phase => {
                end = Some(r.t_nanos);
            }
            _ => {}
        }
    }
    match (start, end) {
        (Some(s), Some(e)) => Some(e.saturating_sub(s)),
        _ => None,
    }
}

/// Reconstruct one cluster migration's per-phase durations from its span
/// events, using the same `(end - start) as f64 / 1e9` arithmetic as
/// [`reconstruct_phases`] so the result equals the orchestrator's own
/// report bit for bit.
pub fn reconstruct_migration_phases(records: &[Record], migration: u64) -> PhaseDurations {
    let secs =
        |p: Phase| migration_phase_span_nanos(records, migration, p).unwrap_or(0) as f64 / 1e9;
    PhaseDurations {
        disk_precopy_secs: secs(Phase::DiskPrecopy),
        mem_precopy_secs: secs(Phase::MemPrecopy),
        freeze_secs: secs(Phase::Freeze),
        postcopy_secs: secs(Phase::PostCopy),
    }
}

/// Every cluster migration id admitted in the journal, ascending and
/// deduplicated.
pub fn migration_ids(records: &[Record]) -> Vec<u64> {
    let mut ids: Vec<u64> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::MigrationAdmitted { migration, .. } => Some(*migration),
            _ => None,
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Render a human-readable summary of a journal: phase table, pre-copy
/// iteration counts, post-copy block events, transport incidents.
pub fn phase_summary(records: &[Record]) -> String {
    let phases = reconstruct_phases(records);
    let mut out = String::new();
    let _ = writeln!(out, "phase            duration");
    let rows = [
        ("disk pre-copy", phases.disk_precopy_secs),
        ("mem pre-copy", phases.mem_precopy_secs),
        ("freeze (down)", phases.freeze_secs),
        ("post-copy", phases.postcopy_secs),
    ];
    for (name, secs) in rows {
        let _ = writeln!(out, "{name:<16} {:>10.6} s", secs);
    }

    let mut disk_iters: Vec<u64> = Vec::new();
    let mut mem_iters: Vec<u64> = Vec::new();
    let (mut pushed, mut pulled, mut dropped, mut cancelled, mut pull_reqs) = (0u64, 0, 0, 0, 0);
    let (mut src_reconnects, mut dst_reconnects, mut faults) = (0u64, 0u64, 0u64);
    let mut src_bytes = 0u64;
    for r in records {
        match &r.event {
            Event::Iteration {
                resource: Resource::Disk,
                units_sent,
                ..
            } => disk_iters.push(*units_sent),
            Event::Iteration {
                resource: Resource::Memory,
                units_sent,
                ..
            } => mem_iters.push(*units_sent),
            Event::BlockPushed { .. } => pushed += 1,
            Event::BlockPulled { .. } => pulled += 1,
            Event::BlockDropped { .. } => dropped += 1,
            Event::SyncCancelled { .. } => cancelled += 1,
            Event::PullRequested { .. } => pull_reqs += 1,
            Event::Reconnect {
                side: Side::Source, ..
            } => src_reconnects += 1,
            Event::Reconnect {
                side: Side::Destination,
                ..
            } => dst_reconnects += 1,
            Event::FaultInjected { .. } => faults += 1,
            Event::TransportBytes {
                side: Side::Source,
                bytes,
            } => src_bytes = src_bytes.max(*bytes),
            _ => {}
        }
    }
    let _ = writeln!(out, "disk iterations  {disk_iters:?}");
    let _ = writeln!(out, "mem iterations   {mem_iters:?}");
    let _ = writeln!(
        out,
        "post-copy        {pushed} pushed, {pulled} pulled, {dropped} dropped, \
         {cancelled} cancelled, {pull_reqs} pull requests"
    );
    let _ = writeln!(
        out,
        "transport        {src_reconnects} src + {dst_reconnects} dst reconnects, \
         {faults} faults injected, {src_bytes} bytes from source"
    );
    let _ = writeln!(out, "journal          {} records", records.len());
    out
}

/// Pretty-printed JSON snapshot of a metrics registry — the shape
/// `crates/bench` writes under `results/`.
pub fn metrics_json(reg: &Registry) -> String {
    serde_json::to_string_pretty(&reg.snapshot()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;
    use crate::event::FaultLabel;
    use crate::recorder::Recorder;

    fn sample_journal() -> Vec<Record> {
        let rec = Recorder::new(64);
        rec.record_at_nanos(0, || Event::PhaseStart {
            side: Side::Source,
            phase: Phase::DiskPrecopy,
        });
        rec.record_at_nanos(1_500_000_000, || Event::Iteration {
            side: Side::Source,
            resource: Resource::Disk,
            index: 0,
            units_sent: 4096,
            dirty_at_end: 120,
        });
        rec.record_at_nanos(2_000_000_000, || Event::PhaseEnd {
            side: Side::Source,
            phase: Phase::DiskPrecopy,
        });
        rec.record_at_nanos(2_000_000_000, || Event::PhaseStart {
            side: Side::Source,
            phase: Phase::Freeze,
        });
        rec.record_at_nanos(2_000_000_000, || Event::Suspended { side: Side::Source });
        rec.record_at_nanos(2_054_000_000, || Event::Resumed {
            side: Side::Destination,
        });
        rec.record_at_nanos(2_054_000_000, || Event::PhaseEnd {
            side: Side::Source,
            phase: Phase::Freeze,
        });
        rec.record_at_nanos(2_100_000_000, || Event::FaultInjected {
            fault: FaultLabel::Reset,
            messages_before: 20,
        });
        rec.record_at_nanos(2_200_000_000, || Event::SyncCancelled { block: 9 });
        rec.record_at_nanos(2_300_000_000, || Event::BlockDropped { block: 9 });
        rec.records()
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let records = sample_journal();
        let jsonl = to_jsonl(&records);
        assert_eq!(jsonl.lines().count(), records.len());
        let back = from_jsonl(&jsonl).expect("parse journal");
        assert_eq!(back, records);
    }

    #[test]
    fn from_jsonl_reports_malformed_lines() {
        let err = from_jsonl("{\"seq\":0\nnot json").expect_err("must fail");
        assert!(err.contains("line 1"), "got: {err}");
    }

    #[test]
    fn reconstructed_spans_match_simduration_arithmetic() {
        let records = sample_journal();
        let phases = reconstruct_phases(&records);
        // Exactly (end - start) as f64 / 1e9 — SimDuration::as_secs_f64.
        assert_eq!(phases.disk_precopy_secs, 2_000_000_000_f64 / 1e9);
        assert_eq!(phases.freeze_secs, 54_000_000_f64 / 1e9);
        assert_eq!(phases.mem_precopy_secs, 0.0);
        assert_eq!(phase_span_nanos(&records, Phase::PostCopy), None);
    }

    #[test]
    fn summary_mentions_the_interesting_numbers() {
        let s = phase_summary(&sample_journal());
        assert!(s.contains("disk pre-copy"), "{s}");
        assert!(s.contains("0 src + 0 dst reconnects"), "{s}");
        assert!(s.contains("1 faults injected"), "{s}");
        assert!(s.contains("1 cancelled"), "{s}");
    }

    #[test]
    fn migration_spans_are_scoped_per_migration() {
        let rec = Recorder::new(64);
        rec.record_at_nanos(0, || Event::MigrationAdmitted {
            migration: 0,
            vm: 3,
            src: 0,
            dst: 1,
            incremental: false,
            first_pass_blocks: 4096,
        });
        rec.record_at_nanos(0, || Event::MigrationPhaseStart {
            migration: 0,
            phase: Phase::DiskPrecopy,
        });
        rec.record_at_nanos(500, || Event::MigrationPhaseStart {
            migration: 1,
            phase: Phase::DiskPrecopy,
        });
        rec.record_at_nanos(1_000, || Event::MigrationPhaseEnd {
            migration: 0,
            phase: Phase::DiskPrecopy,
        });
        rec.record_at_nanos(2_000, || Event::MigrationPhaseEnd {
            migration: 1,
            phase: Phase::DiskPrecopy,
        });
        rec.record_at_nanos(9, || Event::MigrationAdmitted {
            migration: 1,
            vm: 4,
            src: 1,
            dst: 0,
            incremental: true,
            first_pass_blocks: 17,
        });
        let records = rec.records();
        assert_eq!(
            migration_phase_span_nanos(&records, 0, Phase::DiskPrecopy),
            Some(1_000)
        );
        assert_eq!(
            migration_phase_span_nanos(&records, 1, Phase::DiskPrecopy),
            Some(1_500)
        );
        assert_eq!(migration_phase_span_nanos(&records, 1, Phase::Freeze), None);
        assert_eq!(migration_ids(&records), vec![0, 1]);

        let phases = reconstruct_migration_phases(&records, 1);
        assert_eq!(phases.disk_precopy_secs, 1_500_f64 / 1e9);
        assert_eq!(phases.freeze_secs, 0.0);

        // The cluster variants survive the JSONL round-trip like the rest.
        let back = from_jsonl(&to_jsonl(&records)).expect("parse");
        assert_eq!(back, records);
    }

    #[test]
    fn wall_records_survive_the_round_trip() {
        let rec = Recorder::new(8);
        rec.record(|| Event::Reconnect {
            side: Side::Destination,
            attempt: 2,
        });
        let back = from_jsonl(&to_jsonl(&rec.records())).expect("parse");
        assert_eq!(back[0].clock, ClockDomain::Wall);
        assert_eq!(
            back[0].event,
            Event::Reconnect {
                side: Side::Destination,
                attempt: 2
            }
        );
    }
}
