//! Dual-clock tracing, metrics, and event journal for migration runs.
//!
//! The paper's whole evaluation (Figures 4–6, Tables I–III) is a timeline
//! story — phase durations, per-iteration transfer counts, downtime — yet a
//! migration engine on its own only yields end-of-run aggregates. This crate
//! is the observability substrate both execution modes record into:
//!
//! * the **DES simulator** stamps events with virtual [`des` time] as raw
//!   nanoseconds ([`ClockDomain::Sim`]);
//! * the **live engine's** real threads stamp events with monotonic wall
//!   time relative to the recorder's epoch ([`ClockDomain::Wall`]).
//!
//! One typed [`Event`] taxonomy serves both, so the same exporters and the
//! same phase-timing reconstruction work on either journal.
//!
//! The [`Recorder`] sits on the hot path of the protocol threads, so it is
//! held to the same rules lintkit enforces on the transport zones:
//!
//! * **panic-free** — no `unwrap`/`expect`/panic-family macros;
//! * **never blocks the producer** — when the bounded journal is full,
//!   records are counted as dropped, not queued;
//! * **disabled is ~free** — a disabled recorder's `record` call is a single
//!   relaxed atomic load; the event closure never runs, so no allocation and
//!   no lock happen.
//!
//! Exporters ([`to_jsonl`], [`from_jsonl`], [`phase_summary`],
//! [`reconstruct_phases`], [`metrics_json`]) turn a journal into a JSONL
//! trace file, a human-readable phase table, or the per-phase durations that
//! must agree exactly with `migrate`'s own `MigrationReport` accounting.
//!
//! [`des` time]: ClockDomain::Sim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod event;
mod export;
mod metrics;
mod recorder;

pub use clock::ClockDomain;
pub use event::{Event, FaultLabel, Phase, Record, Resource, Side};
pub use export::{
    from_jsonl, metrics_json, migration_ids, migration_phase_span_nanos, phase_span_nanos,
    phase_summary, reconstruct_migration_phases, reconstruct_phases, to_jsonl, PhaseDurations,
};
pub use metrics::{
    bucket_index, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramBucket,
    HistogramSnapshot, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use recorder::{Recorder, DEFAULT_JOURNAL_CAPACITY};
