//! Counters, gauges, and fixed-bucket log2 histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap atomic cells
//! behind `Arc`s: hot paths clone a handle once at setup time and then
//! update lock-free. The [`Registry`] is only locked on registration and
//! snapshot, never on update.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket a value falls into (see [`HISTOGRAM_BUCKETS`]).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket log2 histogram (for block latencies, round durations,
/// transfer sizes — anything spanning orders of magnitude).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    fn new() -> Self {
        Self(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record every observation in the iterator.
    pub fn observe_all(&self, values: impl IntoIterator<Item = u64>) {
        for v in values {
            self.observe(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// A named collection of metrics. Registration is get-or-create by name,
/// so independent subsystems can share a counter without coordination.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut i = self.inner.lock();
        if let Some((_, c)) = i.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        i.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut i = self.inner.lock();
        if let Some((_, g)) = i.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        i.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut i = self.inner.lock();
        if let Some((_, h)) = i.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::default();
        i.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// A serializable point-in-time snapshot, sorted by name so output is
    /// deterministic regardless of registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let i = self.inner.lock();
        let mut counters: Vec<CounterSnapshot> = i
            .counters
            .iter()
            .map(|(n, c)| CounterSnapshot {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        let mut gauges: Vec<GaugeSnapshot> = i
            .gauges
            .iter()
            .map(|(n, g)| GaugeSnapshot {
                name: n.clone(),
                value: g.get(),
            })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = i
            .histograms
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                count: h.count(),
                sum: h.sum(),
                buckets: h
                    .0
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.load(Ordering::Relaxed) > 0)
                    .map(|(k, b)| HistogramBucket {
                        log2_upper: k as u64,
                        count: b.load(Ordering::Relaxed),
                    })
                    .collect(),
            })
            .collect();
        drop(i);
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One non-empty log2 bucket: `count` observations in
/// `[2^(log2_upper-1), 2^log2_upper)` (bucket 0 holds exact zeros).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Bucket index `k`; upper bound is `2^k`.
    pub log2_upper: u64,
    /// Observations in this bucket.
    pub count: u64,
}

/// Snapshot of one histogram (empty buckets elided).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Non-empty buckets in index order.
    pub buckets: Vec<HistogramBucket>,
}

/// Serializable snapshot of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, by name.
    pub histograms: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let reg = Registry::new();
        let a = reg.counter("pushes");
        let b = reg.counter("pushes");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("pushes").get(), 3);
        reg.gauge("dirty").set(17);
        assert_eq!(reg.gauge("dirty").get(), 17);
    }

    #[test]
    fn histogram_observes_into_log2_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("latency");
        for v in [0, 1, 2, 3, 900, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1930);
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.name, "latency");
        let by_bucket: Vec<(u64, u64)> =
            hs.buckets.iter().map(|b| (b.log2_upper, b.count)).collect();
        assert_eq!(by_bucket, vec![(0, 1), (1, 1), (2, 2), (10, 1), (11, 1)]);
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").add(5);
        reg.gauge("mid").set(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "alpha");
        assert_eq!(snap.counters[1].name, "zeta");
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
