//! The bounded, panic-free, multi-producer recorder.
//!
//! Protocol threads, the guest driver, and the DES engine all hold
//! `Arc<Recorder>` clones and record concurrently. Design rules (the same
//! ones lintkit enforces on the transport zones this sits inside):
//!
//! * **Disabled is a single relaxed atomic load.** `record` takes the event
//!   as a closure; when the recorder is disabled the closure never runs, so
//!   the disabled path allocates nothing and takes no lock.
//! * **Full never blocks.** The journal is bounded; once full, further
//!   records bump a drop counter and return. A slow consumer can lose
//!   events, never stall a migration.
//! * **No panics.** No `unwrap`/`expect`/panic-family macros anywhere on
//!   the recording path.
//!
//! Sequence numbers are assigned under the journal lock, so `seq` order is
//! exactly buffer order — the canonical happened-before relation used by
//! the §III-A cancellation-ordering test.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::clock::ClockDomain;
use crate::event::{Event, Record};
use crate::metrics::Registry;

/// Default bound on the journal: generous for any single migration run
/// (a full live run records well under a million events).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 20;

struct Journal {
    records: Vec<Record>,
    next_seq: u64,
}

/// A bounded multi-producer event journal plus a metrics registry, shared
/// across threads as `Arc<Recorder>`.
///
/// Wall-clock records are stamped relative to `epoch` (the creation
/// instant), so spans between two wall records are exact monotonic-clock
/// differences.
pub struct Recorder {
    enabled: AtomicBool,
    capacity: usize,
    epoch: Instant,
    dropped: AtomicU64,
    journal: Mutex<Journal>,
    metrics: Registry,
}

impl Recorder {
    /// An enabled recorder holding at most `capacity` records.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            enabled: AtomicBool::new(true),
            capacity,
            epoch: Instant::now(),
            dropped: AtomicU64::new(0),
            journal: Mutex::new(Journal {
                records: Vec::new(),
                next_seq: 0,
            }),
            metrics: Registry::new(),
        })
    }

    /// An enabled recorder with the default capacity.
    pub fn enabled() -> Arc<Self> {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A disabled recorder: every `record*` call is a single relaxed atomic
    /// load and an early return. Engines default to this so instrumentation
    /// costs nothing when nobody asked for a trace.
    pub fn off() -> Arc<Self> {
        Arc::new(Self {
            enabled: AtomicBool::new(false),
            capacity: 0,
            epoch: Instant::now(),
            dropped: AtomicU64::new(0),
            journal: Mutex::new(Journal {
                records: Vec::new(),
                next_seq: 0,
            }),
            metrics: Registry::new(),
        })
    }

    /// Whether recording is active (relaxed load — the fast-path check).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The instant wall-clock timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Record a wall-clock event stamped "now". The closure only runs when
    /// the recorder is enabled.
    #[inline]
    pub fn record(&self, make: impl FnOnce() -> Event) {
        if !self.is_enabled() {
            return;
        }
        self.record_at_instant(Instant::now(), make);
    }

    /// Record a wall-clock event stamped with a caller-supplied instant —
    /// used where the engine already holds the authoritative instant (e.g.
    /// the suspend/resume instants that define downtime), so the journal
    /// reconstructs *exactly* the durations the engine reports.
    #[inline]
    pub fn record_at_instant(&self, at: Instant, make: impl FnOnce() -> Event) {
        if !self.is_enabled() {
            return;
        }
        let since = at.saturating_duration_since(self.epoch);
        let t_nanos = u64::try_from(since.as_nanos()).unwrap_or(u64::MAX);
        self.push(t_nanos, ClockDomain::Wall, make());
    }

    /// Record a virtual-time event stamped with raw simulator nanoseconds
    /// (`SimTime::as_nanos()`). The closure only runs when enabled.
    #[inline]
    pub fn record_at_nanos(&self, t_nanos: u64, make: impl FnOnce() -> Event) {
        if !self.is_enabled() {
            return;
        }
        self.push(t_nanos, ClockDomain::Sim, make());
    }

    /// Append under the journal lock; count a drop instead of growing past
    /// the bound. The event is fully constructed before the lock is taken.
    fn push(&self, t_nanos: u64, clock: ClockDomain, event: Event) {
        let mut j = self.journal.lock();
        if j.records.len() >= self.capacity {
            drop(j);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let seq = j.next_seq;
        j.next_seq += 1;
        j.records.push(Record {
            seq,
            t_nanos,
            clock,
            event,
        });
    }

    /// Records dropped because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of records currently in the journal.
    pub fn len(&self) -> usize {
        self.journal.lock().records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the journal in `seq` order.
    pub fn records(&self) -> Vec<Record> {
        self.journal.lock().records.clone()
    }

    /// The metrics registry recorded alongside the journal.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Side;
    use std::cell::Cell;

    #[test]
    fn disabled_path_runs_no_closure_and_takes_no_lock() {
        let rec = Recorder::off();
        let ran = Cell::new(0u32);
        // Hold the journal lock for the whole disabled-record sequence:
        // if any record path below tried to take it, this test would
        // deadlock (parking_lot mutexes are not reentrant). Completing
        // proves the disabled path is just the atomic check.
        let _guard = rec.journal.lock();
        rec.record(|| {
            ran.set(ran.get() + 1);
            Event::Suspended { side: Side::Source }
        });
        rec.record_at_instant(Instant::now(), || {
            ran.set(ran.get() + 1);
            Event::Resumed { side: Side::Source }
        });
        rec.record_at_nanos(42, || {
            ran.set(ran.get() + 1);
            Event::PullRequested { block: 7 }
        });
        drop(_guard);
        assert_eq!(ran.get(), 0, "closure ran on a disabled recorder");
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn full_journal_counts_drops_instead_of_blocking() {
        let rec = Recorder::new(4);
        for b in 0..10u64 {
            rec.record_at_nanos(b, || Event::BlockPushed { block: b });
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let seqs: Vec<u64> = rec.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sim_and_wall_records_carry_their_clock_domain() {
        let rec = Recorder::new(16);
        rec.record_at_nanos(1_000, || Event::Suspended { side: Side::Source });
        rec.record(|| Event::Resumed {
            side: Side::Destination,
        });
        let rs = rec.records();
        assert_eq!(rs[0].clock, ClockDomain::Sim);
        assert_eq!(rs[0].t_nanos, 1_000);
        assert_eq!(rs[1].clock, ClockDomain::Wall);
    }

    #[test]
    fn multi_producer_seq_is_dense_and_unique() {
        let rec = Recorder::new(4_000);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..100u64 {
                        rec.record_at_nanos(i, || Event::BlockPulled { block: t * 100 + i });
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = rec.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len(), 400);
        // Buffer order IS seq order.
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<_>>());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn record_at_instant_spans_are_exact_instant_differences() {
        let rec = Recorder::new(16);
        let a = Instant::now();
        let b = a + std::time::Duration::from_micros(1234);
        rec.record_at_instant(a, || Event::Suspended { side: Side::Source });
        rec.record_at_instant(b, || Event::Resumed {
            side: Side::Destination,
        });
        let rs = rec.records();
        assert_eq!(
            rs[1].t_nanos - rs[0].t_nanos,
            (b - a).as_nanos() as u64,
            "wall spans must be exact monotonic differences"
        );
    }
}
