//! Content addressing for block transfer: fingerprints and the
//! destination-side index.
//!
//! The migration data plane ships a 16-byte *reference* instead of a
//! full block whenever the destination can prove it already holds the
//! block's content (DESIGN.md §15). Two pieces live here:
//!
//! * [`hash_block`] — a hand-rolled, dependency-free 64-bit block hash
//!   in the xxhash/FxHash family. The hot path is word-batched (four
//!   independent accumulator lanes over 32-byte stripes, the same
//!   batching trick as `block-bitmap`'s `zip_words_in_place`), with a
//!   byte-assembled scalar twin ([`hash_block_scalar`]) that computes
//!   the *identical* function — property tests pin the two together so
//!   tail handling and endianness can never drift.
//! * [`ContentIndex`] — fingerprint → resident block(s) for one disk,
//!   maintained as blocks are overwritten, so the destination can
//!   answer "already have it" and resolve a reference to a local copy.
//!
//! A fingerprint match is always treated as a *hint*: the destination
//! re-hashes the resident block before reusing it and falls back to a
//! full send on mismatch, so images stay bit-identical under any hash
//! behaviour (including adversarial collisions).
//!
//! This file is in the lintkit `no-panic-transport` zone: it runs
//! inline on receive paths and must never panic.

use std::collections::{BTreeMap, BTreeSet};

// xxh64 prime constants — the multipliers are odd and high-entropy,
// which is all the mixing below needs.
const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc)).wrapping_mul(P1).wrapping_add(P4)
}

/// Final avalanche: every input bit affects every output bit.
#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

/// Mix a single word into a 64-bit fingerprint (splitmix-style). Used
/// for metadata-driven fingerprints in the simulated engines, where a
/// block's content *is* its generation counter.
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    avalanche(v.wrapping_mul(P1).wrapping_add(P5))
}

/// 64-bit content fingerprint of a block — word-batched hot path.
///
/// Four accumulator lanes consume 32-byte stripes via `chunks_exact`,
/// then the sub-stripe tail is folded in 8 bytes at a time and finally
/// byte-wise, with the total length mixed in before the avalanche.
pub fn hash_block(data: &[u8]) -> u64 {
    let mut h: u64;
    let mut stripes = data.chunks_exact(32);
    if data.len() >= 32 {
        let mut acc = [P1.wrapping_add(P2), P2, 0, 0u64.wrapping_sub(P1)];
        for s in stripes.by_ref() {
            // Four independent lanes: the multiplies pipeline instead
            // of serialising on one accumulator.
            for (a, w) in acc.iter_mut().zip(s.chunks_exact(8)) {
                let lane = u64::from_le_bytes([w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]]);
                *a = round(*a, lane);
            }
        }
        h = acc[0]
            .rotate_left(1)
            .wrapping_add(acc[1].rotate_left(7))
            .wrapping_add(acc[2].rotate_left(12))
            .wrapping_add(acc[3].rotate_left(18));
        for a in acc {
            h = merge_round(h, a);
        }
    } else {
        h = P5;
    }
    h = h.wrapping_add(data.len() as u64);
    let tail = stripes.remainder();
    let mut words = tail.chunks_exact(8);
    for w in words.by_ref() {
        let lane = u64::from_le_bytes([w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]]);
        h = (h ^ round(0, lane))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
    }
    for &b in words.remainder() {
        h = (h ^ u64::from(b).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
    }
    avalanche(h)
}

/// Byte-at-a-time twin of [`hash_block`]: identical function, no
/// `chunks_exact`, every word assembled from individual byte loads.
/// Exists so property tests can pin the batched path to a reference.
pub fn hash_block_scalar(data: &[u8]) -> u64 {
    #[inline]
    fn word_at(data: &[u8], i: usize) -> u64 {
        let mut w = 0u64;
        for k in 0..8 {
            w |= u64::from(*data.get(i + k).unwrap_or(&0)) << (8 * k);
        }
        w
    }
    let n = data.len();
    let mut h: u64;
    let mut i = 0usize;
    if n >= 32 {
        let mut acc = [P1.wrapping_add(P2), P2, 0, 0u64.wrapping_sub(P1)];
        while i + 32 <= n {
            for (j, a) in acc.iter_mut().enumerate() {
                *a = round(*a, word_at(data, i + 8 * j));
            }
            i += 32;
        }
        h = acc[0]
            .rotate_left(1)
            .wrapping_add(acc[1].rotate_left(7))
            .wrapping_add(acc[2].rotate_left(12))
            .wrapping_add(acc[3].rotate_left(18));
        for a in acc {
            h = merge_round(h, a);
        }
    } else {
        h = P5;
    }
    h = h.wrapping_add(n as u64);
    while i + 8 <= n {
        h = (h ^ round(0, word_at(data, i)))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
        i += 8;
    }
    while i < n {
        let b = u64::from(*data.get(i).unwrap_or(&0));
        h = (h ^ b.wrapping_mul(P5)).rotate_left(11).wrapping_mul(P1);
        i += 1;
    }
    avalanche(h)
}

/// Which resident blocks currently hold a fingerprint. The common case
/// is exactly one holder, kept inline with no allocation; duplicate
/// content (zero blocks, clones) spills into an ordered set so removal
/// stays `O(log n)` and `resolve` stays deterministic.
#[derive(Debug, Clone)]
enum Holders {
    One(usize),
    Many(BTreeSet<usize>),
}

/// Destination-side content index: fingerprint → resident block(s).
///
/// Built once over the resident image when a dedup-negotiated session
/// opens, then maintained on every block the migration applies, so a
/// `BlockRef` can always be resolved against *current* content.
#[derive(Debug, Clone, Default)]
pub struct ContentIndex {
    by_fp: BTreeMap<u64, Holders>,
    /// Current fingerprint of each resident block.
    fp_of: Vec<u64>,
}

impl ContentIndex {
    /// Index a disk from its per-block fingerprints (index order =
    /// block order).
    pub fn from_fps(fps: Vec<u64>) -> Self {
        let mut by_fp: BTreeMap<u64, Holders> = BTreeMap::new();
        for (block, &fp) in fps.iter().enumerate() {
            Self::insert(&mut by_fp, fp, block);
        }
        Self { by_fp, fp_of: fps }
    }

    /// Number of resident blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.fp_of.len()
    }

    /// Number of distinct fingerprints resident.
    pub fn distinct(&self) -> usize {
        self.by_fp.len()
    }

    /// Does any resident block hold this content?
    pub fn contains(&self, fp: u64) -> bool {
        self.by_fp.contains_key(&fp)
    }

    /// A resident block holding this content, if any (the lowest such
    /// block, so resolution is deterministic).
    pub fn resolve(&self, fp: u64) -> Option<usize> {
        match self.by_fp.get(&fp)? {
            Holders::One(b) => Some(*b),
            Holders::Many(set) => set.iter().next().copied(),
        }
    }

    /// The distinct fingerprints resident, in ascending order (this is
    /// the `ContentSummary` the destination acknowledges at handshake;
    /// BTreeMap keys iterate sorted — no explicit sort needed).
    pub fn fingerprints(&self) -> Vec<u64> {
        self.by_fp.keys().copied().collect()
    }

    /// Block `block`'s content changed to `fp`: keep the index exact.
    /// Out-of-range blocks are ignored (the caller validated the
    /// protocol frame; a stale index entry is worse than a dropped one).
    pub fn record(&mut self, block: usize, fp: u64) {
        let Some(slot) = self.fp_of.get_mut(block) else {
            return;
        };
        let old = *slot;
        if old == fp {
            return;
        }
        *slot = fp;
        Self::remove(&mut self.by_fp, old, block);
        Self::insert(&mut self.by_fp, fp, block);
    }

    fn insert(by_fp: &mut BTreeMap<u64, Holders>, fp: u64, block: usize) {
        match by_fp.entry(fp) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Holders::One(block));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                Holders::One(b) => {
                    let prev = *b;
                    if prev != block {
                        let mut set = BTreeSet::new();
                        set.insert(prev);
                        set.insert(block);
                        *e.get_mut() = Holders::Many(set);
                    }
                }
                Holders::Many(set) => {
                    set.insert(block);
                }
            },
        }
    }

    fn remove(by_fp: &mut BTreeMap<u64, Holders>, fp: u64, block: usize) {
        let std::collections::btree_map::Entry::Occupied(mut e) = by_fp.entry(fp) else {
            return;
        };
        match e.get_mut() {
            Holders::One(b) => {
                if *b == block {
                    e.remove();
                }
            }
            Holders::Many(set) => {
                set.remove(&block);
                let mut it = set.iter();
                if let (Some(&only), None) = (it.next(), it.next()) {
                    *e.get_mut() = Holders::One(only);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_and_scalar_agree_on_edges() {
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 63, 64, 512, 4096] {
            let data: Vec<u8> = (0..n)
                .map(|i| (i as u8).wrapping_mul(37).wrapping_add(5))
                .collect();
            assert_eq!(hash_block(&data), hash_block_scalar(&data), "len {n}");
        }
    }

    #[test]
    fn property_batched_equals_scalar_on_random_inputs() {
        // Hand-rolled property test (no proptest dep): 500 xorshift-
        // driven inputs of arbitrary length and content must hash the
        // same through the word-batched path and its scalar twin — the
        // stability claim the wire protocol depends on.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..500 {
            let len = (next() % 5000) as usize;
            let data: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert_eq!(
                hash_block(&data),
                hash_block_scalar(&data),
                "case {case}, len {len}"
            );
        }
    }

    #[test]
    fn fingerprint_distinguishes_lengths_and_contents() {
        assert_ne!(hash_block(&[0u8; 4096]), hash_block(&[0u8; 512]));
        assert_ne!(hash_block(&[0u8; 4096]), hash_block(&[1u8; 4096]));
        assert_eq!(hash_block(&[7u8; 4096]), hash_block(&[7u8; 4096]));
        let mut a = [0u8; 4096];
        let mut b = [0u8; 4096];
        a[0] = 1;
        b[4095] = 1;
        assert_ne!(hash_block(&a), hash_block(&b));
    }

    #[test]
    fn hash_u64_is_injective_looking() {
        let mut seen = std::collections::HashSet::new();
        for g in 0u64..10_000 {
            assert!(seen.insert(hash_u64(g)));
        }
    }

    #[test]
    fn index_tracks_overwrites_and_duplicates() {
        let mut idx = ContentIndex::from_fps(vec![10, 20, 10, 30]);
        assert_eq!(idx.num_blocks(), 4);
        assert_eq!(idx.distinct(), 3);
        assert!(idx.contains(10));
        assert_eq!(idx.resolve(10), Some(0));
        // Overwrite block 0: fp 10 still resolvable via block 2.
        idx.record(0, 40);
        assert_eq!(idx.resolve(10), Some(2));
        assert_eq!(idx.resolve(40), Some(0));
        // Overwrite block 2: fp 10 gone.
        idx.record(2, 40);
        assert!(!idx.contains(10));
        assert_eq!(idx.resolve(40), Some(0));
        // Same-fp rewrite is a no-op.
        idx.record(3, 30);
        assert_eq!(idx.resolve(30), Some(3));
        // Out-of-range writes are ignored.
        idx.record(99, 1);
        assert!(!idx.contains(1));
    }

    #[test]
    fn summary_is_sorted_and_distinct() {
        let idx = ContentIndex::from_fps(vec![5, 3, 5, 1]);
        assert_eq!(idx.fingerprints(), vec![1, 3, 5]);
    }
}
