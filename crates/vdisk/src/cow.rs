//! Copy-on-write storage backend.
//!
//! The Collective (§II-B of the paper) captures "all the updates … in a
//! Copy-on-Write disk. So only the differences of the disk storage need
//! to be migrated." [`CowStorage`] is that mechanism: reads fall through
//! to an immutable shared base image; writes land in a private overlay.
//! The overlay's block set *is* the diff a Collective-style migration
//! ships, and [`CowStorage::overlay_blocks`] exports it as a bitmap for
//! the `migrate::baselines::run_collective` scheme and for seeding
//! template migrations.

use std::collections::BTreeMap;
use std::sync::Arc;

use block_bitmap::{DirtyMap, FlatBitmap};

use crate::Storage;

/// A base image shared (immutably) among any number of CoW overlays.
pub type BaseImage = Arc<dyn Storage>;

/// Copy-on-write store: an immutable base plus a private write overlay.
pub struct CowStorage {
    base: BaseImage,
    overlay: BTreeMap<usize, Box<[u8]>>,
}

impl CowStorage {
    /// Create an overlay over `base`. The overlay starts empty: every
    /// read initially reflects the base.
    pub fn new(base: BaseImage) -> Self {
        Self {
            base,
            overlay: BTreeMap::new(),
        }
    }

    /// Number of blocks the overlay has diverged on.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// The diverged blocks as a bitmap — the diff a Collective-style
    /// migration transfers.
    pub fn overlay_blocks(&self) -> FlatBitmap {
        let mut bm = FlatBitmap::new(self.base.num_blocks());
        for &b in self.overlay.keys() {
            bm.set(b);
        }
        bm
    }

    /// Discard the overlay, reverting every block to the base image
    /// (the Collective's "rollback to golden image" operation).
    pub fn revert(&mut self) {
        self.overlay.clear();
    }

    /// Fold the overlay into a new base image (an explicit, allocating
    /// snapshot), returning it for use as the next generation's base.
    pub fn snapshot(&self) -> crate::DenseStorage {
        let bs = self.block_size();
        let mut out = crate::DenseStorage::new(bs, self.num_blocks());
        let mut buf = vec![0u8; bs];
        for b in 0..self.num_blocks() {
            self.read_block(b, &mut buf);
            out.write_block(b, &buf);
        }
        out
    }
}

impl Storage for CowStorage {
    fn block_size(&self) -> usize {
        self.base.block_size()
    }

    fn num_blocks(&self) -> usize {
        self.base.num_blocks()
    }

    fn read_block(&self, idx: usize, out: &mut [u8]) {
        match self.overlay.get(&idx) {
            Some(b) => {
                assert_eq!(out.len(), self.block_size(), "buffer/block size mismatch");
                out.copy_from_slice(b);
            }
            None => self.base.read_block(idx, out),
        }
    }

    fn write_block(&mut self, idx: usize, data: &[u8]) {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        assert_eq!(data.len(), self.block_size(), "buffer/block size mismatch");
        self.overlay.insert(idx, data.into());
    }

    fn resident_bytes(&self) -> usize {
        self.overlay.len() * self.block_size() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stamp_bytes, DenseStorage};

    fn base(blocks: usize) -> BaseImage {
        let mut b = DenseStorage::new(512, blocks);
        for i in 0..blocks {
            b.write_block(i, &stamp_bytes(i, 0, 512));
        }
        Arc::new(b)
    }

    #[test]
    fn reads_fall_through_until_written() {
        let mut cow = CowStorage::new(base(8));
        let mut buf = vec![0u8; 512];
        cow.read_block(3, &mut buf);
        assert_eq!(buf, stamp_bytes(3, 0, 512));
        cow.write_block(3, &stamp_bytes(3, 9, 512));
        cow.read_block(3, &mut buf);
        assert_eq!(buf, stamp_bytes(3, 9, 512));
        // Neighbours untouched.
        cow.read_block(2, &mut buf);
        assert_eq!(buf, stamp_bytes(2, 0, 512));
        assert_eq!(cow.overlay_len(), 1);
    }

    #[test]
    fn overlay_blocks_is_the_diff() {
        let mut cow = CowStorage::new(base(16));
        for b in [1usize, 5, 5, 9] {
            cow.write_block(b, &stamp_bytes(b, 1, 512));
        }
        assert_eq!(cow.overlay_blocks().to_indices(), vec![1, 5, 9]);
        assert_eq!(cow.overlay_len(), 3);
    }

    #[test]
    fn two_overlays_share_one_base_independently() {
        let shared = base(8);
        let mut a = CowStorage::new(Arc::clone(&shared));
        let mut b = CowStorage::new(shared);
        a.write_block(0, &stamp_bytes(0, 1, 512));
        b.write_block(0, &stamp_bytes(0, 2, 512));
        let mut buf = vec![0u8; 512];
        a.read_block(0, &mut buf);
        assert_eq!(buf, stamp_bytes(0, 1, 512));
        b.read_block(0, &mut buf);
        assert_eq!(buf, stamp_bytes(0, 2, 512));
    }

    #[test]
    fn revert_restores_base() {
        let mut cow = CowStorage::new(base(4));
        cow.write_block(2, &stamp_bytes(2, 7, 512));
        cow.revert();
        assert_eq!(cow.overlay_len(), 0);
        let mut buf = vec![0u8; 512];
        cow.read_block(2, &mut buf);
        assert_eq!(buf, stamp_bytes(2, 0, 512));
    }

    #[test]
    fn snapshot_folds_overlay() {
        let mut cow = CowStorage::new(base(4));
        cow.write_block(1, &stamp_bytes(1, 5, 512));
        let snap = cow.snapshot();
        let mut buf = vec![0u8; 512];
        snap.read_block(1, &mut buf);
        assert_eq!(buf, stamp_bytes(1, 5, 512));
        snap.read_block(0, &mut buf);
        assert_eq!(buf, stamp_bytes(0, 0, 512));
    }

    #[test]
    fn resident_bytes_tracks_overlay_only() {
        let mut cow = CowStorage::new(base(1024));
        let before = cow.resident_bytes();
        for b in 0..10 {
            cow.write_block(b, &stamp_bytes(b, 1, 512));
        }
        assert!(cow.resident_bytes() >= before + 10 * 512);
        assert!(cow.resident_bytes() < 100 * 512);
    }

    #[test]
    fn works_behind_a_virtual_disk() {
        // A CoW store plugs into the same VirtualDisk/TrackedDisk stack.
        let disk = crate::VirtualDisk::new(Box::new(CowStorage::new(base(8))));
        disk.write_block(4, &stamp_bytes(4, 3, 512));
        assert_eq!(disk.read_block(4), stamp_bytes(4, 3, 512));
        assert_eq!(disk.read_block(5), stamp_bytes(5, 0, 512));
    }
}
