//! Thread-safe virtual block device (VBD).

use block_bitmap::BlockMapper;
use parking_lot::RwLock;

use crate::{fingerprint_block, Storage};

/// A virtual block device: geometry plus a locked backing store.
///
/// This is the disk the guest sees (Xen's VBD). All access is
/// block-granular; extent helpers split byte ranges via the
/// [`BlockMapper`]. The store lives behind a `parking_lot::RwLock` so that
/// live-mode migration (reader) and the guest workload (writer) can share
/// the device across threads.
pub struct VirtualDisk {
    mapper: BlockMapper,
    storage: RwLock<Box<dyn Storage>>,
}

impl VirtualDisk {
    /// Wrap a backing store.
    pub fn new(storage: Box<dyn Storage>) -> Self {
        let mapper = BlockMapper::new(storage.block_size() as u64, storage.num_blocks());
        Self {
            mapper,
            storage: RwLock::new(storage),
        }
    }

    /// Dense zero-filled disk of `num_blocks` × `block_size`.
    pub fn dense(block_size: usize, num_blocks: usize) -> Self {
        Self::new(Box::new(crate::DenseStorage::new(block_size, num_blocks)))
    }

    /// Sparse zero-filled disk of `num_blocks` × `block_size`.
    pub fn sparse(block_size: usize, num_blocks: usize) -> Self {
        Self::new(Box::new(crate::SparseStorage::new(block_size, num_blocks)))
    }

    /// Device geometry.
    pub fn mapper(&self) -> BlockMapper {
        self.mapper
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.mapper.block_size() as usize
    }

    /// Capacity in blocks.
    pub fn num_blocks(&self) -> usize {
        self.mapper.num_blocks()
    }

    /// Read block `idx` into a fresh buffer.
    pub fn read_block(&self, idx: usize) -> Vec<u8> {
        let mut buf = vec![0u8; self.block_size()];
        self.storage.read().read_block(idx, &mut buf);
        buf
    }

    /// Read block `idx` into `out`.
    pub fn read_block_into(&self, idx: usize, out: &mut [u8]) {
        self.storage.read().read_block(idx, out);
    }

    /// Overwrite block `idx`.
    pub fn write_block(&self, idx: usize, data: &[u8]) {
        self.storage.write().write_block(idx, data);
    }

    /// FNV-1a fingerprint of one block's contents.
    pub fn fingerprint(&self, idx: usize) -> u64 {
        fingerprint_block(&self.read_block(idx))
    }

    /// Fingerprints of every block — the consistency-check signature used
    /// by the integration tests.
    pub fn fingerprint_all(&self) -> Vec<u64> {
        let mut buf = vec![0u8; self.block_size()];
        let guard = self.storage.read();
        (0..self.num_blocks())
            .map(|i| {
                guard.read_block(i, &mut buf);
                fingerprint_block(&buf)
            })
            .collect()
    }

    /// `true` when every block matches `other` byte-for-byte.
    ///
    /// # Panics
    /// Panics when geometries differ.
    pub fn content_equals(&self, other: &VirtualDisk) -> bool {
        assert_eq!(self.mapper, other.mapper, "disk geometries must match");
        let mut a = vec![0u8; self.block_size()];
        let mut b = vec![0u8; self.block_size()];
        let ga = self.storage.read();
        let gb = other.storage.read();
        (0..self.num_blocks()).all(|i| {
            ga.read_block(i, &mut a);
            gb.read_block(i, &mut b);
            a == b
        })
    }

    /// Indices of blocks whose contents differ from `other`.
    ///
    /// # Panics
    /// Panics when geometries differ.
    pub fn diff_blocks(&self, other: &VirtualDisk) -> Vec<usize> {
        assert_eq!(self.mapper, other.mapper, "disk geometries must match");
        let mut a = vec![0u8; self.block_size()];
        let mut b = vec![0u8; self.block_size()];
        let ga = self.storage.read();
        let gb = other.storage.read();
        (0..self.num_blocks())
            .filter(|&i| {
                ga.read_block(i, &mut a);
                gb.read_block(i, &mut b);
                a != b
            })
            .collect()
    }

    /// Resident memory of the backing store.
    pub fn resident_bytes(&self) -> usize {
        self.storage.read().resident_bytes()
    }
}

impl std::fmt::Debug for VirtualDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualDisk")
            .field("block_size", &self.block_size())
            .field("num_blocks", &self.num_blocks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp_bytes;

    #[test]
    fn write_read_roundtrip() {
        let d = VirtualDisk::dense(512, 8);
        let data = stamp_bytes(3, 1, 512);
        d.write_block(3, &data);
        assert_eq!(d.read_block(3), data);
        let mut out = vec![0u8; 512];
        d.read_block_into(3, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn content_equality_and_diff() {
        let a = VirtualDisk::dense(512, 8);
        let b = VirtualDisk::sparse(512, 8);
        assert!(a.content_equals(&b));
        a.write_block(2, &stamp_bytes(2, 9, 512));
        a.write_block(5, &stamp_bytes(5, 9, 512));
        assert!(!a.content_equals(&b));
        assert_eq!(a.diff_blocks(&b), vec![2, 5]);
        b.write_block(2, &stamp_bytes(2, 9, 512));
        b.write_block(5, &stamp_bytes(5, 9, 512));
        assert!(a.content_equals(&b));
    }

    #[test]
    fn fingerprints_track_contents() {
        let d = VirtualDisk::dense(512, 4);
        let before = d.fingerprint_all();
        assert_eq!(before.len(), 4);
        assert!(before.windows(2).all(|w| w[0] == w[1])); // all-zero blocks
        d.write_block(1, &stamp_bytes(1, 1, 512));
        let after = d.fingerprint_all();
        assert_ne!(before[1], after[1]);
        assert_eq!(before[0], after[0]);
        assert_eq!(d.fingerprint(1), after[1]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let d = Arc::new(VirtualDisk::dense(512, 64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        let blk = t * 16 + i;
                        d.write_block(blk, &stamp_bytes(blk, 1, 512));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for blk in 0..64 {
            assert_eq!(d.read_block(blk), stamp_bytes(blk, 1, 512));
        }
    }

    #[test]
    #[should_panic(expected = "geometries must match")]
    fn mismatched_geometry_panics() {
        let a = VirtualDisk::dense(512, 8);
        let b = VirtualDisk::dense(512, 9);
        a.content_equals(&b);
    }
}
