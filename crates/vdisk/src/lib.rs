//! Virtual block devices with write-intercepting dirty tracking.
//!
//! In the paper the Xen backend driver `blkback` is modified to intercept
//! every write from the migrated domain, split the written extent into
//! 4 KiB blocks, and set the corresponding bits of the block-bitmap. This
//! crate is that layer, rebuilt in userspace:
//!
//! * [`IoRequest`] — the paper's request triple *R⟨O, N, VM⟩*: operation,
//!   block number, and the ID of the domain that submitted it.
//! * [`Storage`] — byte-level backing stores: dense ([`DenseStorage`]) and
//!   lazily-allocated sparse ([`SparseStorage`]).
//! * [`VirtualDisk`] — a thread-safe virtual block device (VBD) over a
//!   [`Storage`], with per-block and extent I/O.
//! * [`TrackedDisk`] — the `blkback` analogue: a [`VirtualDisk`] wrapper
//!   that records every write into any number of attached
//!   [`block_bitmap::AtomicBitmap`] trackers (the paper keeps up to three
//!   live at once: the pre-copy iteration map, the post-copy transferred
//!   map, and the IM new-dirty map).
//! * [`PendingQueue`] — the destination-side pending list *P* of the
//!   post-copy algorithm, holding read requests that must wait for their
//!   block to be pulled from the source.
//! * [`CowStorage`] — a copy-on-write overlay over a shared base image
//!   (the Collective's §II-B mechanism; its overlay is the migration
//!   diff).
//! * [`MetaDisk`] — a metadata-only disk model (per-block version
//!   counters) for full-scale simulation where materializing 40 GB of
//!   bytes is pointless but write-ordering consistency still needs
//!   checking.
//! * [`ReplicaTable`] — the §V/§VII stale-replica store: per (VM, site)
//!   departure images with bitmap-diff staleness, backing incremental
//!   migration in the multi-site extension and the cluster orchestrator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
mod cow;
mod disk;
mod meta;
mod pending;
mod replica;
mod request;
mod storage;
mod tracked;

pub use content::{hash_block, hash_u64, ContentIndex};
pub use cow::{BaseImage, CowStorage};
pub use disk::VirtualDisk;
pub use meta::MetaDisk;
pub use pending::PendingQueue;
pub use replica::{Replica, ReplicaTable};
pub use request::{DomainId, IoOp, IoRequest};
pub use storage::{DenseStorage, SparseStorage, Storage};
pub use tracked::{TrackedDisk, TrackerHandle};

/// Per-block 64-bit FNV-1a fingerprint, used by consistency checks.
pub fn fingerprint_block(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic fill pattern for block `idx` with generation `stamp`,
/// used by tests to verify which write "won" on a block after migration.
pub fn stamp_bytes(idx: usize, stamp: u64, block_size: usize) -> Vec<u8> {
    let mut out = vec![0u8; block_size];
    let seed = (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stamp;
    for (i, b) in out.iter_mut().enumerate() {
        *b = (seed.rotate_left((i % 64) as u32) >> (i % 8)) as u8;
    }
    // Embed the stamp verbatim so failures are debuggable.
    if block_size >= 16 {
        out[..8].copy_from_slice(&(idx as u64).to_le_bytes());
        out[8..16].copy_from_slice(&stamp.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_contents() {
        let a = fingerprint_block(&[0u8; 4096]);
        let b = fingerprint_block(&[1u8; 4096]);
        assert_ne!(a, b);
        assert_eq!(a, fingerprint_block(&[0u8; 4096]));
    }

    #[test]
    fn stamp_bytes_unique_per_block_and_stamp() {
        let a = stamp_bytes(1, 1, 4096);
        let b = stamp_bytes(2, 1, 4096);
        let c = stamp_bytes(1, 2, 4096);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, stamp_bytes(1, 1, 4096));
        assert_eq!(&a[8..16], &1u64.to_le_bytes());
    }
}
