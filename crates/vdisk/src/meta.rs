//! Metadata-only disk model for full-scale simulation.
//!
//! The paper's disks are 40 GB. Simulated experiments need to know *which*
//! block holds *which version* of its data — not the bytes themselves — so
//! [`MetaDisk`] stores one `u32` generation per block. Generation 0 is the
//! pristine image; each guest write stamps the block with a fresh global
//! generation. Consistency after a simulated migration reduces to
//! generation-vector equality, checked block-by-block.

/// Per-block generation counters standing in for block contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaDisk {
    generations: Vec<u32>,
    next_gen: u32,
    writes: u64,
}

impl MetaDisk {
    /// A pristine disk of `num_blocks` blocks (all at generation 0).
    pub fn new(num_blocks: usize) -> Self {
        Self {
            generations: vec![0; num_blocks],
            next_gen: 1,
            writes: 0,
        }
    }

    /// Capacity in blocks.
    pub fn num_blocks(&self) -> usize {
        self.generations.len()
    }

    /// Record a guest write to `block`, stamping a fresh generation.
    /// Returns the new generation.
    ///
    /// # Panics
    /// Panics when `block` is out of range.
    pub fn write(&mut self, block: usize) -> u32 {
        let g = self.next_gen;
        self.generations[block] = g;
        self.next_gen += 1;
        self.writes += 1;
        g
    }

    /// Current generation of `block`.
    ///
    /// # Panics
    /// Panics when `block` is out of range.
    pub fn generation(&self, block: usize) -> u32 {
        self.generations[block]
    }

    /// Copy one block's "contents" (its generation) from `src` — the
    /// simulated transfer of a block between hosts.
    ///
    /// # Panics
    /// Panics when geometries differ or `block` is out of range.
    pub fn copy_block_from(&mut self, src: &MetaDisk, block: usize) {
        assert_eq!(
            self.num_blocks(),
            src.num_blocks(),
            "disk geometries must match"
        );
        self.generations[block] = src.generations[block];
    }

    /// Total guest writes applied.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Blocks whose generations differ from `other`.
    ///
    /// # Panics
    /// Panics when geometries differ.
    pub fn diff_blocks(&self, other: &MetaDisk) -> Vec<usize> {
        assert_eq!(
            self.num_blocks(),
            other.num_blocks(),
            "disk geometries must match"
        );
        (0..self.num_blocks())
            .filter(|&i| self.generations[i] != other.generations[i])
            .collect()
    }

    /// `true` when every block matches `other`.
    pub fn content_equals(&self, other: &MetaDisk) -> bool {
        self.generations == other.generations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_bump_generations_monotonically() {
        let mut d = MetaDisk::new(4);
        assert_eq!(d.generation(2), 0);
        let g1 = d.write(2);
        let g2 = d.write(2);
        let g3 = d.write(0);
        assert!(g1 < g2 && g2 < g3);
        assert_eq!(d.generation(2), g2);
        assert_eq!(d.write_count(), 3);
    }

    #[test]
    fn copy_block_transfers_generation() {
        let mut src = MetaDisk::new(4);
        let mut dst = MetaDisk::new(4);
        src.write(1);
        assert!(!src.content_equals(&dst));
        assert_eq!(src.diff_blocks(&dst), vec![1]);
        dst.copy_block_from(&src, 1);
        assert!(src.content_equals(&dst));
    }

    #[test]
    fn full_sync_by_diff() {
        let mut src = MetaDisk::new(16);
        let mut dst = MetaDisk::new(16);
        for b in [0usize, 3, 3, 9, 15] {
            src.write(b);
        }
        for b in src.diff_blocks(&dst) {
            dst.copy_block_from(&src, b);
        }
        assert!(src.content_equals(&dst));
        assert!(dst.diff_blocks(&src).is_empty());
    }

    #[test]
    #[should_panic(expected = "geometries must match")]
    fn geometry_mismatch_panics() {
        let a = MetaDisk::new(4);
        let b = MetaDisk::new(5);
        a.diff_blocks(&b);
    }
}
