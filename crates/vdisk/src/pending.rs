//! The destination-side pending list *P* of the post-copy algorithm.
//!
//! In the paper, every I/O request intercepted on the destination is first
//! queued in a pending list. Requests that need no pull are submitted (and
//! removed) immediately; a read to a still-dirty block stays queued until
//! the block arrives from the source, at which point every queued request
//! for that block is released.

use std::collections::BTreeMap;

use crate::IoRequest;

/// FIFO-per-block pending request queue.
#[derive(Debug, Default)]
pub struct PendingQueue {
    by_block: BTreeMap<usize, Vec<IoRequest>>,
    len: usize,
    /// Largest simultaneous queue population observed (reported as an I/O
    /// blocking metric).
    high_water: usize,
}

impl PendingQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a request waiting on its block.
    pub fn push(&mut self, req: IoRequest) {
        self.by_block.entry(req.block).or_default().push(req);
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
    }

    /// Release every request waiting on `block`, in arrival order.
    /// Returns an empty vector when none are waiting.
    pub fn take_for_block(&mut self, block: usize) -> Vec<IoRequest> {
        match self.by_block.remove(&block) {
            Some(reqs) => {
                self.len -= reqs.len();
                reqs
            }
            None => Vec::new(),
        }
    }

    /// `true` when at least one request waits on `block`.
    pub fn waiting_on(&self, block: usize) -> bool {
        self.by_block.contains_key(&block)
    }

    /// Distinct blocks with waiting requests, ascending (BTreeMap keys
    /// iterate sorted — no explicit sort needed).
    pub fn blocked_blocks(&self) -> Vec<usize> {
        self.by_block.keys().copied().collect()
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest queue population seen so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomainId;

    #[test]
    fn push_take_roundtrip() {
        let mut q = PendingQueue::new();
        assert!(q.is_empty());
        q.push(IoRequest::read(5, DomainId(1)));
        q.push(IoRequest::read(5, DomainId(1)));
        q.push(IoRequest::read(7, DomainId(1)));
        assert_eq!(q.len(), 3);
        assert!(q.waiting_on(5));
        assert_eq!(q.blocked_blocks(), vec![5, 7]);

        let released = q.take_for_block(5);
        assert_eq!(released.len(), 2);
        assert!(released.iter().all(|r| r.block == 5));
        assert_eq!(q.len(), 1);
        assert!(!q.waiting_on(5));
    }

    #[test]
    fn take_for_absent_block_is_empty() {
        let mut q = PendingQueue::new();
        assert!(q.take_for_block(42).is_empty());
    }

    #[test]
    fn fifo_order_per_block() {
        let mut q = PendingQueue::new();
        q.push(IoRequest::read(3, DomainId(1)));
        q.push(IoRequest::write(3, DomainId(2)));
        let released = q.take_for_block(3);
        assert_eq!(released[0].domain, DomainId(1));
        assert_eq!(released[1].domain, DomainId(2));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = PendingQueue::new();
        for b in 0..5 {
            q.push(IoRequest::read(b, DomainId(1)));
        }
        for b in 0..5 {
            q.take_for_block(b);
        }
        assert!(q.is_empty());
        assert_eq!(q.high_water(), 5);
    }
}
