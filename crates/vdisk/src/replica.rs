//! First-class stale-replica table for incremental migration.
//!
//! §V of the paper: when a VM returns to a machine it recently left, the
//! machine still holds the disk image from the departure, so only the
//! blocks written since — the bitmap diff — need to cross the wire. §VII
//! names the generalization "local disk storage version maintenance …
//! among any recently used physical machines". [`ReplicaTable`] is that
//! mechanism as a standalone structure: a map from (VM, site) to the
//! [`MetaDisk`] image the site kept at the VM's last departure, with
//! staleness computed on demand by diffing generation vectors into a
//! [`FlatBitmap`].
//!
//! Both the multi-site extension in `migrate::sim` and the cluster
//! orchestrator use this table; the orchestrator's IM-aware placement
//! policy ranks candidate destinations by [`ReplicaTable::stale_count`].

use std::collections::BTreeMap;

use block_bitmap::{DirtyMap, FlatBitmap};

use crate::MetaDisk;

/// One remembered disk image: what a site held when the VM departed.
#[derive(Debug, Clone)]
pub struct Replica {
    /// The image as of the VM's last departure from the site.
    pub disk: MetaDisk,
    /// How many departures have refreshed this replica.
    pub departures: u64,
}

/// Map from (VM, site) to the stale replica the site keeps.
///
/// Keys are plain `u64` identifiers so the table is agnostic to how the
/// caller names VMs and machines (the multi-site extension uses site
/// indices; the orchestrator uses host indices). Iteration order is the
/// `BTreeMap` key order, so every traversal is deterministic.
#[derive(Debug, Clone, Default)]
pub struct ReplicaTable {
    replicas: BTreeMap<(u64, u64), Replica>,
}

impl ReplicaTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `disk` as the replica site `site` keeps for `vm`,
    /// replacing any older replica for the pair.
    pub fn record(&mut self, vm: u64, site: u64, disk: MetaDisk) {
        let departures = self.replicas.get(&(vm, site)).map_or(0, |r| r.departures);
        self.replicas.insert(
            (vm, site),
            Replica {
                disk,
                departures: departures + 1,
            },
        );
    }

    /// The replica site `site` keeps for `vm`, if any.
    pub fn get(&self, vm: u64, site: u64) -> Option<&Replica> {
        self.replicas.get(&(vm, site))
    }

    /// Remove and return the replica for (vm, site) — the destination
    /// consumes its stale copy when an incremental migration starts.
    pub fn take(&mut self, vm: u64, site: u64) -> Option<Replica> {
        self.replicas.remove(&(vm, site))
    }

    /// `true` when site `site` holds a replica of `vm`.
    pub fn has(&self, vm: u64, site: u64) -> bool {
        self.replicas.contains_key(&(vm, site))
    }

    /// Sites holding a replica of `vm`, ascending.
    pub fn sites_with_replica(&self, vm: u64) -> Vec<u64> {
        self.replicas
            .keys()
            .filter(|(v, _)| *v == vm)
            .map(|(_, s)| *s)
            .collect()
    }

    /// Staleness of site `site`'s replica of `vm` against the live image:
    /// a bitmap of every block whose generation differs. `None` when the
    /// site holds no replica or the geometries disagree (a replica of a
    /// resized disk is useless and treated as absent).
    pub fn stale_bitmap(&self, vm: u64, site: u64, live: &MetaDisk) -> Option<FlatBitmap> {
        let replica = self.replicas.get(&(vm, site))?;
        if replica.disk.num_blocks() != live.num_blocks() {
            return None;
        }
        let mut bm = FlatBitmap::new(live.num_blocks());
        for b in live.diff_blocks(&replica.disk) {
            bm.set(b);
        }
        Some(bm)
    }

    /// Number of stale blocks in site `site`'s replica of `vm`, or `None`
    /// when no usable replica exists. The IM-aware scheduler's ranking key.
    pub fn stale_count(&self, vm: u64, site: u64, live: &MetaDisk) -> Option<usize> {
        self.stale_bitmap(vm, site, live).map(|bm| bm.count_ones())
    }

    /// The first-pass worklist for migrating `vm` to `site`: the stale
    /// diff when the site holds a usable replica, otherwise the all-set
    /// bitmap of §V ("an all-set block-bitmap is generated").
    pub fn first_pass_bitmap(&self, vm: u64, site: u64, live: &MetaDisk) -> FlatBitmap {
        self.stale_bitmap(vm, site, live)
            .unwrap_or_else(|| FlatBitmap::all_set(live.num_blocks()))
    }

    /// Total replicas stored, across all VMs and sites.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// `true` when no replica is stored.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_pair_has_no_replica() {
        let t = ReplicaTable::new();
        let live = MetaDisk::new(8);
        assert!(!t.has(0, 0));
        assert!(t.stale_bitmap(0, 0, &live).is_none());
        assert!(t.first_pass_bitmap(0, 0, &live).count_ones() == 8);
        assert!(t.is_empty());
    }

    #[test]
    fn stale_bitmap_is_exactly_the_diff() {
        let mut t = ReplicaTable::new();
        let mut live = MetaDisk::new(16);
        live.write(3);
        t.record(7, 2, live.clone());
        // No writes since departure: nothing stale.
        let bm = t.stale_bitmap(7, 2, &live).expect("replica exists");
        assert_eq!(bm.count_ones(), 0);
        // Writes since departure: exactly those blocks are stale.
        live.write(5);
        live.write(9);
        live.write(5);
        let bm = t.stale_bitmap(7, 2, &live).expect("replica exists");
        assert_eq!(bm.to_indices(), vec![5, 9]);
        assert_eq!(t.stale_count(7, 2, &live), Some(2));
        assert_eq!(t.first_pass_bitmap(7, 2, &live).to_indices(), vec![5, 9]);
    }

    #[test]
    fn record_refreshes_and_counts_departures() {
        let mut t = ReplicaTable::new();
        let mut live = MetaDisk::new(4);
        t.record(1, 0, live.clone());
        live.write(2);
        t.record(1, 0, live.clone());
        let r = t.get(1, 0).expect("replica");
        assert_eq!(r.departures, 2);
        assert_eq!(t.stale_count(1, 0, &live), Some(0));
    }

    #[test]
    fn take_consumes_the_replica() {
        let mut t = ReplicaTable::new();
        t.record(1, 3, MetaDisk::new(4));
        assert!(t.take(1, 3).is_some());
        assert!(t.take(1, 3).is_none());
        assert!(!t.has(1, 3));
    }

    #[test]
    fn sites_with_replica_is_sorted_and_per_vm() {
        let mut t = ReplicaTable::new();
        t.record(1, 5, MetaDisk::new(4));
        t.record(1, 2, MetaDisk::new(4));
        t.record(9, 0, MetaDisk::new(4));
        assert_eq!(t.sites_with_replica(1), vec![2, 5]);
        assert_eq!(t.sites_with_replica(9), vec![0]);
        assert!(t.sites_with_replica(3).is_empty());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn geometry_mismatch_reads_as_no_replica() {
        let mut t = ReplicaTable::new();
        t.record(0, 0, MetaDisk::new(4));
        let live = MetaDisk::new(8);
        assert!(t.stale_bitmap(0, 0, &live).is_none());
        assert_eq!(t.first_pass_bitmap(0, 0, &live).count_ones(), 8);
    }
}
