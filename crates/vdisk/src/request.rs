//! The paper's I/O request model *R⟨O, N, VM⟩*.

use serde::{Deserialize, Serialize};

/// Identifier of the domain (VM) that submitted a request. `DomainId(0)`
/// is the privileged Domain0, matching Xen's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The privileged control domain.
    pub const DOM0: DomainId = DomainId(0);

    /// `true` for the privileged domain.
    pub fn is_dom0(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Domain{}", self.0)
    }
}

/// Operation kind: the paper's *O ∈ {READ, WRITE}*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Read one block.
    Read,
    /// Overwrite one block.
    Write,
}

/// One block-granular I/O request: the paper's *R⟨O, N, VM⟩* where `O` is
/// the operation, `N` the block number, and `VM` the submitting domain.
///
/// Multi-block guest requests are split into per-block requests before they
/// reach the tracked disk, mirroring `blkback` splitting "the requested
/// area into 4K blocks".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IoRequest {
    /// Operation kind.
    pub op: IoOp,
    /// Block number `N`.
    pub block: usize,
    /// Submitting domain `VM`.
    pub domain: DomainId,
}

impl IoRequest {
    /// Convenience constructor for a read.
    pub fn read(block: usize, domain: DomainId) -> Self {
        Self {
            op: IoOp::Read,
            block,
            domain,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(block: usize, domain: DomainId) -> Self {
        Self {
            op: IoOp::Write,
            block,
            domain,
        }
    }

    /// `true` when the request is a write.
    pub fn is_write(self) -> bool {
        self.op == IoOp::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = IoRequest::read(5, DomainId(3));
        assert_eq!(r.op, IoOp::Read);
        assert!(!r.is_write());
        let w = IoRequest::write(9, DomainId::DOM0);
        assert!(w.is_write());
        assert!(w.domain.is_dom0());
        assert_eq!(w.block, 9);
    }

    #[test]
    fn display_matches_xen_convention() {
        assert_eq!(DomainId::DOM0.to_string(), "Domain0");
        assert_eq!(DomainId(7).to_string(), "Domain7");
    }
}
