//! Byte-level backing stores for virtual disks.

use std::collections::BTreeMap;

/// A block-addressed backing store.
///
/// Implementations are single-threaded; thread safety is added by
/// [`crate::VirtualDisk`], which owns the store behind a lock.
pub trait Storage: Send + Sync {
    /// Block size in bytes.
    fn block_size(&self) -> usize;

    /// Capacity in blocks.
    fn num_blocks(&self) -> usize;

    /// Copy block `idx` into `out`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range or `out.len() != block_size()`.
    fn read_block(&self, idx: usize, out: &mut [u8]);

    /// Overwrite block `idx` with `data`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range or `data.len() != block_size()`.
    fn write_block(&mut self, idx: usize, data: &[u8]);

    /// Bytes of memory the store currently occupies (approximate).
    fn resident_bytes(&self) -> usize;
}

/// Dense storage: one contiguous allocation for the whole device.
pub struct DenseStorage {
    block_size: usize,
    data: Vec<u8>,
}

impl DenseStorage {
    /// Allocate a zero-filled dense store.
    ///
    /// # Panics
    /// Panics when `block_size == 0`.
    pub fn new(block_size: usize, num_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        Self {
            block_size,
            data: vec![0; block_size * num_blocks],
        }
    }

    fn range(&self, idx: usize) -> std::ops::Range<usize> {
        let start = idx * self.block_size;
        start..start + self.block_size
    }
}

impl Storage for DenseStorage {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> usize {
        self.data.len() / self.block_size
    }

    fn read_block(&self, idx: usize, out: &mut [u8]) {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        assert_eq!(out.len(), self.block_size, "buffer/block size mismatch");
        out.copy_from_slice(&self.data[self.range(idx)]);
    }

    fn write_block(&mut self, idx: usize, data: &[u8]) {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        assert_eq!(data.len(), self.block_size, "buffer/block size mismatch");
        let r = self.range(idx);
        self.data[r].copy_from_slice(data);
    }

    fn resident_bytes(&self) -> usize {
        self.data.capacity()
    }
}

/// Sparse storage: blocks are allocated on first write; unwritten blocks
/// read as zeroes. Suited to large mostly-empty test disks.
pub struct SparseStorage {
    block_size: usize,
    num_blocks: usize,
    blocks: BTreeMap<usize, Box<[u8]>>,
}

impl SparseStorage {
    /// Create an all-zero sparse store.
    ///
    /// # Panics
    /// Panics when `block_size == 0`.
    pub fn new(block_size: usize, num_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        Self {
            block_size,
            num_blocks,
            blocks: BTreeMap::new(),
        }
    }

    /// Number of blocks actually materialized.
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl Storage for SparseStorage {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    fn read_block(&self, idx: usize, out: &mut [u8]) {
        assert!(idx < self.num_blocks, "block {idx} out of range");
        assert_eq!(out.len(), self.block_size, "buffer/block size mismatch");
        match self.blocks.get(&idx) {
            Some(b) => out.copy_from_slice(b),
            None => out.fill(0),
        }
    }

    fn write_block(&mut self, idx: usize, data: &[u8]) {
        assert!(idx < self.num_blocks, "block {idx} out of range");
        assert_eq!(data.len(), self.block_size, "buffer/block size mismatch");
        if data.iter().all(|&b| b == 0) {
            // Writing zeroes to an unallocated block can stay unallocated.
            if let Some(existing) = self.blocks.get_mut(&idx) {
                existing.fill(0);
            }
        } else {
            self.blocks.insert(idx, data.into());
        }
    }

    fn resident_bytes(&self) -> usize {
        self.blocks.len() * self.block_size + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut s: impl Storage) {
        let bs = s.block_size();
        let mut buf = vec![0u8; bs];

        // Fresh blocks read as zero.
        s.read_block(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));

        // Write/read round-trip.
        let data: Vec<u8> = (0..bs).map(|i| (i % 251) as u8).collect();
        s.write_block(3, &data);
        s.read_block(3, &mut buf);
        assert_eq!(buf, data);

        // Overwrite wins.
        let data2 = vec![0xAB; bs];
        s.write_block(3, &data2);
        s.read_block(3, &mut buf);
        assert_eq!(buf, data2);

        // Neighbours untouched.
        s.read_block(2, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        s.read_block(4, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn dense_roundtrip() {
        exercise(DenseStorage::new(512, 16));
    }

    #[test]
    fn sparse_roundtrip() {
        exercise(SparseStorage::new(512, 16));
    }

    #[test]
    fn sparse_lazy_allocation() {
        let mut s = SparseStorage::new(4096, 1_000_000);
        assert_eq!(s.allocated_blocks(), 0);
        s.write_block(999_999, &vec![7u8; 4096]);
        assert_eq!(s.allocated_blocks(), 1);
        // Zero writes to untouched blocks do not allocate.
        s.write_block(5, &vec![0u8; 4096]);
        assert_eq!(s.allocated_blocks(), 1);
        assert!(s.resident_bytes() < 100_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_out_of_range() {
        let mut s = DenseStorage::new(512, 4);
        s.write_block(4, &[0; 512]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dense_size_mismatch() {
        let mut s = DenseStorage::new(512, 4);
        s.write_block(0, &[0; 100]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_out_of_range_read() {
        let s = SparseStorage::new(512, 4);
        let mut buf = [0u8; 512];
        s.read_block(9, &mut buf);
    }
}
