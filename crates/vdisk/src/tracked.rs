//! The `blkback` analogue: write interception into block-bitmaps.
//!
//! The paper modifies Xen's block backend so that, while migration is in
//! progress, every write from the migrated domain sets bits in a
//! block-bitmap. Several bitmaps are live at different times:
//!
//! * during pre-copy, the per-iteration dirty map (drained and reset at
//!   every iteration boundary);
//! * during post-copy on the destination, the *transferred* map (cleared as
//!   blocks arrive or are overwritten) and the *new* map that feeds a later
//!   Incremental Migration.
//!
//! [`TrackedDisk`] therefore supports any number of simultaneously attached
//! trackers; each guest write is recorded in all of them. Tracking can be
//! switched on and off as a whole — the paper measures the overhead of
//! exactly this interception in Table III.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use block_bitmap::AtomicBitmap;
use parking_lot::RwLock;

use crate::{DomainId, IoOp, IoRequest, VirtualDisk};

/// Handle identifying an attached tracker, for later detachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerHandle(u64);

struct Tracker {
    handle: TrackerHandle,
    bitmap: Arc<AtomicBitmap>,
    /// Restrict recording to writes from this domain; `None` records all
    /// domains (Dom0 housekeeping writes are normally excluded, matching
    /// the paper's check `R.VM != migrated VM`).
    domain: Option<DomainId>,
}

/// Per-device telemetry counters, registered once on attach so the I/O
/// paths only do relaxed atomic adds.
struct DiskStats {
    reads: telemetry::Counter,
    writes: telemetry::Counter,
}

/// A [`VirtualDisk`] wrapped with write interception.
pub struct TrackedDisk {
    disk: Arc<VirtualDisk>,
    trackers: RwLock<Vec<Tracker>>,
    next_handle: AtomicU64,
    tracking_enabled: AtomicBool,
    reads: AtomicU64,
    writes: AtomicU64,
    telemetry_on: AtomicBool,
    telemetry: RwLock<Option<DiskStats>>,
}

impl TrackedDisk {
    /// Wrap a disk. Tracking starts disabled (the paper's `blkback` only
    /// monitors once signalled at migration start).
    pub fn new(disk: Arc<VirtualDisk>) -> Self {
        Self {
            disk,
            trackers: RwLock::new(Vec::new()),
            next_handle: AtomicU64::new(0),
            tracking_enabled: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            telemetry_on: AtomicBool::new(false),
            telemetry: RwLock::new(None),
        }
    }

    /// Mirror this device's read/write totals into `recorder`'s metrics
    /// as `{prefix}.reads` / `{prefix}.writes`. A disabled recorder keeps
    /// the I/O paths at a single relaxed atomic load.
    pub fn set_telemetry(&self, recorder: &telemetry::Recorder, prefix: &str) {
        if !recorder.is_enabled() {
            return;
        }
        let m = recorder.metrics();
        *self.telemetry.write() = Some(DiskStats {
            reads: m.counter(&format!("{prefix}.reads")),
            writes: m.counter(&format!("{prefix}.writes")),
        });
        self.telemetry_on.store(true, Ordering::Release);
    }

    fn tel_read(&self) {
        if self.telemetry_on.load(Ordering::Relaxed) {
            if let Some(s) = &*self.telemetry.read() {
                s.reads.inc();
            }
        }
    }

    fn tel_write(&self) {
        if self.telemetry_on.load(Ordering::Relaxed) {
            if let Some(s) = &*self.telemetry.read() {
                s.writes.inc();
            }
        }
    }

    /// The wrapped device.
    pub fn disk(&self) -> &Arc<VirtualDisk> {
        &self.disk
    }

    /// Enable write interception ("signal blkback to start monitoring").
    pub fn enable_tracking(&self) {
        self.tracking_enabled.store(true, Ordering::Release);
    }

    /// Disable write interception.
    pub fn disable_tracking(&self) {
        self.tracking_enabled.store(false, Ordering::Release);
    }

    /// Whether interception is currently on.
    pub fn tracking_enabled(&self) -> bool {
        self.tracking_enabled.load(Ordering::Acquire)
    }

    /// Attach a tracker bitmap. When `domain` is `Some`, only writes from
    /// that domain are recorded.
    ///
    /// # Panics
    /// Panics when the bitmap size does not match the disk's block count.
    pub fn attach_tracker(
        &self,
        bitmap: Arc<AtomicBitmap>,
        domain: Option<DomainId>,
    ) -> TrackerHandle {
        assert_eq!(
            bitmap.len(),
            self.disk.num_blocks(),
            "tracker bitmap must cover the whole disk"
        );
        let handle = TrackerHandle(self.next_handle.fetch_add(1, Ordering::Relaxed));
        self.trackers.write().push(Tracker {
            handle,
            bitmap,
            domain,
        });
        handle
    }

    /// Detach a tracker. Detaching twice is a no-op.
    pub fn detach_tracker(&self, handle: TrackerHandle) {
        self.trackers.write().retain(|t| t.handle != handle);
    }

    /// Number of attached trackers.
    pub fn tracker_count(&self) -> usize {
        self.trackers.read().len()
    }

    /// Submit a block-granular request; performs the I/O and records writes
    /// into every matching tracker. Returns the read data for reads.
    pub fn submit(&self, req: IoRequest, data: Option<&[u8]>) -> Option<Vec<u8>> {
        match req.op {
            IoOp::Read => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                self.tel_read();
                Some(self.disk.read_block(req.block))
            }
            IoOp::Write => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.tel_write();
                let data = data.expect("write request requires data");
                self.disk.write_block(req.block, data);
                self.record_write(req.block, req.domain);
                None
            }
        }
    }

    /// Read one block, counted like a submitted read request. Reads are
    /// infallible by construction (the disk owns its backing store), so
    /// guest read paths can use this without an unwrap on the
    /// [`TrackedDisk::submit`] `Option`.
    pub fn read_block(&self, block: usize) -> Vec<u8> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.tel_read();
        self.disk.read_block(block)
    }

    /// Record a write into the trackers without performing byte I/O — used
    /// by the metadata-only simulation path, where the same interception
    /// semantics apply but blocks have no materialized contents.
    pub fn record_write(&self, block: usize, domain: DomainId) {
        if !self.tracking_enabled() {
            return;
        }
        for t in self.trackers.read().iter() {
            if t.domain.is_none() || t.domain == Some(domain) {
                t.bitmap.set(block);
            }
        }
    }

    /// Submit a byte-extent write, splitting it into blocks exactly as
    /// the paper's `blkback` does: "it will split the requested area into
    /// 4K blocks and set corresponding bits in the block-bitmap."
    ///
    /// Partial head/tail blocks are read-modify-written (the whole block
    /// is still marked dirty — bitmap granularity is the block).
    ///
    /// # Panics
    /// Panics when the extent exceeds the device or `data.len()` differs
    /// from the extent length.
    pub fn write_extent(&self, offset: u64, data: &[u8], domain: DomainId) {
        let mapper = self.disk.mapper();
        let bs = mapper.block_size() as usize;
        let range = mapper.byte_extent(offset, data.len() as u64);
        let mut consumed = 0usize;
        for block in range.iter() {
            let block_start = mapper.byte_of_block(block);
            let in_block_off = offset.saturating_sub(block_start) as usize;
            let span = (bs - in_block_off).min(data.len() - consumed);
            if in_block_off == 0 && span == bs {
                // Aligned full block: straight overwrite.
                self.disk
                    .write_block(block, &data[consumed..consumed + span]);
            } else {
                // Partial block: read-modify-write.
                let mut buf = self.disk.read_block(block);
                buf[in_block_off..in_block_off + span]
                    .copy_from_slice(&data[consumed..consumed + span]);
                self.disk.write_block(block, &buf);
            }
            self.record_write(block, domain);
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.tel_write();
            consumed += span;
        }
        debug_assert_eq!(consumed, data.len());
    }

    /// Submit a sector-granular write (the 512 B unit "on which physical
    /// disk performs reading and writing"), mapped onto blocks.
    ///
    /// # Panics
    /// Panics when the sector extent exceeds the device or `data` is not
    /// a whole number of sectors.
    pub fn write_sectors(&self, sector: u64, data: &[u8], domain: DomainId) {
        assert!(
            (data.len() as u64).is_multiple_of(block_bitmap::BlockMapper::SECTOR_SIZE),
            "data must be whole sectors"
        );
        self.write_extent(
            sector * block_bitmap::BlockMapper::SECTOR_SIZE,
            data,
            domain,
        );
    }

    /// Read a byte extent, crossing block boundaries as needed.
    ///
    /// # Panics
    /// Panics when the extent exceeds the device.
    pub fn read_extent(&self, offset: u64, len: usize, domain: DomainId) -> Vec<u8> {
        let mapper = self.disk.mapper();
        let bs = mapper.block_size() as usize;
        let range = mapper.byte_extent(offset, len as u64);
        let mut out = Vec::with_capacity(len);
        for block in range.iter() {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.tel_read();
            let buf = self.disk.read_block(block);
            let block_start = mapper.byte_of_block(block);
            let start = offset.saturating_sub(block_start) as usize;
            let end = (start + (len - out.len())).min(bs);
            out.extend_from_slice(&buf[start..end]);
        }
        debug_assert_eq!(out.len(), len);
        let _ = domain;
        out
    }

    /// Total reads/writes served.
    pub fn io_counts(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for TrackedDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedDisk")
            .field("disk", &self.disk)
            .field("trackers", &self.tracker_count())
            .field("tracking_enabled", &self.tracking_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp_bytes;
    use block_bitmap::DirtyMap;

    fn setup(blocks: usize) -> (TrackedDisk, Arc<AtomicBitmap>) {
        let disk = Arc::new(VirtualDisk::dense(512, blocks));
        let td = TrackedDisk::new(disk);
        let bm = Arc::new(AtomicBitmap::new(blocks));
        td.attach_tracker(Arc::clone(&bm), Some(DomainId(1)));
        (td, bm)
    }

    #[test]
    fn disabled_tracking_records_nothing() {
        let (td, bm) = setup(8);
        td.submit(
            IoRequest::write(3, DomainId(1)),
            Some(&stamp_bytes(3, 1, 512)),
        );
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn enabled_tracking_records_writes_only() {
        let (td, bm) = setup(8);
        td.enable_tracking();
        td.submit(
            IoRequest::write(3, DomainId(1)),
            Some(&stamp_bytes(3, 1, 512)),
        );
        let read = td.submit(IoRequest::read(3, DomainId(1)), None).unwrap();
        assert_eq!(read, stamp_bytes(3, 1, 512));
        assert_eq!(bm.snapshot().to_indices(), vec![3]);
        assert_eq!(td.io_counts(), (1, 1));
    }

    #[test]
    fn other_domains_writes_not_recorded() {
        let (td, bm) = setup(8);
        td.enable_tracking();
        // Dom0 write: performed, but not tracked for the migrated domain.
        td.submit(
            IoRequest::write(5, DomainId::DOM0),
            Some(&stamp_bytes(5, 1, 512)),
        );
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(td.disk().read_block(5), stamp_bytes(5, 1, 512));
    }

    #[test]
    fn multiple_trackers_all_record() {
        let (td, bm1) = setup(8);
        let bm2 = Arc::new(AtomicBitmap::new(8));
        let h2 = td.attach_tracker(Arc::clone(&bm2), None);
        td.enable_tracking();
        td.submit(
            IoRequest::write(2, DomainId(1)),
            Some(&stamp_bytes(2, 1, 512)),
        );
        assert!(bm1.get(2));
        assert!(bm2.get(2));
        // Detach the second; further writes only land in the first.
        td.detach_tracker(h2);
        td.detach_tracker(h2); // idempotent
        td.submit(
            IoRequest::write(6, DomainId(1)),
            Some(&stamp_bytes(6, 1, 512)),
        );
        assert!(bm1.get(6));
        assert!(!bm2.get(6));
    }

    #[test]
    fn iteration_boundary_drain() {
        // Pre-copy loop pattern: drain at each iteration boundary.
        let (td, bm) = setup(16);
        td.enable_tracking();
        for b in [1usize, 2, 3] {
            td.record_write(b, DomainId(1));
        }
        let iter1 = bm.snapshot_and_clear();
        assert_eq!(iter1.to_indices(), vec![1, 2, 3]);
        for b in [3usize, 9] {
            td.record_write(b, DomainId(1));
        }
        let iter2 = bm.snapshot_and_clear();
        assert_eq!(iter2.to_indices(), vec![3, 9]);
        assert!(bm.snapshot().none_set());
    }

    #[test]
    fn extent_write_splits_into_blocks_and_marks_all() {
        // 512 B blocks; an unaligned 1200-byte write at offset 700 spans
        // blocks 1..=3 — all three must be dirtied (the paper's blkback
        // splitting rule).
        let (td, bm) = setup(8);
        td.enable_tracking();
        let data: Vec<u8> = (0..1200u32).map(|i| (i % 251) as u8).collect();
        td.write_extent(700, &data, DomainId(1));
        assert_eq!(bm.snapshot().to_indices(), vec![1, 2, 3]);
        // Bytes land exactly where they were aimed.
        let back = td.read_extent(700, 1200, DomainId(1));
        assert_eq!(back, data);
        // Bytes around the extent are untouched (partial-block RMW).
        let head = td.read_extent(512, 188, DomainId(1));
        assert!(head.iter().all(|&b| b == 0));
        let tail = td.read_extent(1900, 100, DomainId(1));
        assert!(tail.iter().all(|&b| b == 0));
    }

    #[test]
    fn aligned_extent_write_is_full_blocks() {
        let (td, bm) = setup(8);
        td.enable_tracking();
        let data = vec![0xCD; 1024]; // blocks 2 and 3 exactly
        td.write_extent(1024, &data, DomainId(1));
        assert_eq!(bm.snapshot().to_indices(), vec![2, 3]);
        assert_eq!(td.disk().read_block(2), vec![0xCD; 512]);
        assert_eq!(td.disk().read_block(3), vec![0xCD; 512]);
    }

    #[test]
    fn sector_writes_map_onto_blocks() {
        // 512 B blocks here, so sector == block; one sector write dirties
        // exactly one block.
        let (td, bm) = setup(8);
        td.enable_tracking();
        td.write_sectors(5, &vec![7u8; 512], DomainId(1));
        assert_eq!(bm.snapshot().to_indices(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "whole sectors")]
    fn ragged_sector_write_panics() {
        let (td, _) = setup(8);
        td.write_sectors(0, &[1, 2, 3], DomainId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn extent_past_device_panics() {
        let (td, _) = setup(8);
        td.write_extent(8 * 512 - 10, &[0u8; 20], DomainId(1));
    }

    #[test]
    #[should_panic(expected = "cover the whole disk")]
    fn wrong_sized_tracker_panics() {
        let disk = Arc::new(VirtualDisk::dense(512, 8));
        let td = TrackedDisk::new(disk);
        td.attach_tracker(Arc::new(AtomicBitmap::new(4)), None);
    }

    #[test]
    #[should_panic(expected = "requires data")]
    fn write_without_data_panics() {
        let (td, _) = setup(8);
        td.submit(IoRequest::write(0, DomainId(1)), None);
    }

    #[test]
    fn telemetry_counters_mirror_io_counts() {
        let (td, _) = setup(8);
        let rec = telemetry::Recorder::enabled();
        td.set_telemetry(&rec, "disk.src");
        td.submit(
            IoRequest::write(1, DomainId(1)),
            Some(&stamp_bytes(1, 1, 512)),
        );
        td.read_block(1);
        td.read_block(2);
        assert_eq!(rec.metrics().counter("disk.src.reads").get(), 2);
        assert_eq!(rec.metrics().counter("disk.src.writes").get(), 1);
        // A disabled recorder attaches nothing.
        let (td2, _) = setup(8);
        td2.set_telemetry(&telemetry::Recorder::off(), "disk.dst");
        td2.read_block(0);
        assert_eq!(rec.metrics().counter("disk.dst.reads").get(), 0);
    }
}
