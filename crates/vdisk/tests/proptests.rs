//! Property tests for the block layer: storage equivalence, tracker
//! completeness (the correctness property migration rests on), pending
//! queue conservation, and MetaDisk synchronization.

use std::collections::HashMap;
use std::sync::Arc;

use block_bitmap::AtomicBitmap;
use proptest::prelude::*;
use vdisk::{
    stamp_bytes, DenseStorage, DomainId, IoRequest, MetaDisk, PendingQueue, SparseStorage, Storage,
    TrackedDisk, VirtualDisk,
};

const BLOCKS: usize = 64;
const BS: usize = 512;

proptest! {
    /// Dense and sparse storage are observationally identical under any
    /// write sequence.
    #[test]
    fn dense_equals_sparse(writes in prop::collection::vec((0usize..BLOCKS, 0u64..50), 0..100)) {
        let mut dense = DenseStorage::new(BS, BLOCKS);
        let mut sparse = SparseStorage::new(BS, BLOCKS);
        for &(b, stamp) in &writes {
            let data = stamp_bytes(b, stamp, BS);
            dense.write_block(b, &data);
            sparse.write_block(b, &data);
        }
        let mut a = vec![0u8; BS];
        let mut s = vec![0u8; BS];
        for b in 0..BLOCKS {
            dense.read_block(b, &mut a);
            sparse.read_block(b, &mut s);
            prop_assert_eq!(&a, &s, "block {} diverged", b);
        }
    }

    /// The tracker never misses a guest write while enabled: after any
    /// interleaving of writes and drains, union(drains) ∪ tracker ⊇ all
    /// written blocks — the property that makes iterative pre-copy sound.
    #[test]
    fn tracker_never_loses_a_write(
        ops in prop::collection::vec((0usize..BLOCKS, proptest::bool::ANY), 1..200),
    ) {
        let disk = TrackedDisk::new(Arc::new(VirtualDisk::dense(BS, BLOCKS)));
        let bm = Arc::new(AtomicBitmap::new(BLOCKS));
        disk.attach_tracker(Arc::clone(&bm), Some(DomainId(1)));
        disk.enable_tracking();
        let mut written = std::collections::HashSet::new();
        let mut drained = block_bitmap::FlatBitmap::new(BLOCKS);
        for &(b, drain_now) in &ops {
            disk.submit(IoRequest::write(b, DomainId(1)), Some(&stamp_bytes(b, 1, BS)));
            written.insert(b);
            if drain_now {
                drained.union_with(&bm.snapshot_and_clear());
            }
        }
        drained.union_with(&bm.snapshot_and_clear());
        for &b in &written {
            prop_assert!(block_bitmap::DirtyMap::get(&drained, b), "write to {} lost", b);
        }
    }

    /// Pending queue conserves requests: everything pushed is taken
    /// exactly once, in per-block FIFO order.
    #[test]
    fn pending_queue_conserves(blocks in prop::collection::vec(0usize..16, 0..100)) {
        let mut q = PendingQueue::new();
        let mut expected: HashMap<usize, usize> = HashMap::new();
        for (i, &b) in blocks.iter().enumerate() {
            q.push(IoRequest::read(b, DomainId(i as u32 % 4)));
            *expected.entry(b).or_default() += 1;
        }
        prop_assert_eq!(q.len(), blocks.len());
        let mut taken = 0usize;
        for b in 0..16 {
            let got = q.take_for_block(b);
            prop_assert_eq!(got.len(), expected.get(&b).copied().unwrap_or(0));
            prop_assert!(got.iter().all(|r| r.block == b));
            taken += got.len();
        }
        prop_assert_eq!(taken, blocks.len());
        prop_assert!(q.is_empty());
    }

    /// MetaDisk diff/copy synchronization converges for any write split
    /// across two disks, and `content_equals` agrees with `diff_blocks`.
    #[test]
    fn metadisk_sync_converges(
        src_writes in prop::collection::vec(0usize..BLOCKS, 0..80),
        dst_writes in prop::collection::vec(0usize..BLOCKS, 0..80),
    ) {
        let mut src = MetaDisk::new(BLOCKS);
        let mut dst = MetaDisk::new(BLOCKS);
        for &b in &src_writes {
            src.write(b);
        }
        for &b in &dst_writes {
            dst.write(b);
        }
        let diff = src.diff_blocks(&dst);
        prop_assert_eq!(diff.is_empty(), src.content_equals(&dst));
        for b in diff {
            dst.copy_block_from(&src, b);
        }
        prop_assert!(src.content_equals(&dst));
        prop_assert!(dst.diff_blocks(&src).is_empty());
    }

    /// A tracked read never mutates the disk or the bitmap.
    #[test]
    fn reads_are_pure(reads in prop::collection::vec(0usize..BLOCKS, 1..50)) {
        let disk = TrackedDisk::new(Arc::new(VirtualDisk::dense(BS, BLOCKS)));
        let bm = Arc::new(AtomicBitmap::new(BLOCKS));
        disk.attach_tracker(Arc::clone(&bm), None);
        disk.enable_tracking();
        let before = disk.disk().fingerprint_all();
        for &b in &reads {
            disk.submit(IoRequest::read(b, DomainId(1)), None);
        }
        prop_assert_eq!(disk.disk().fingerprint_all(), before);
        prop_assert_eq!(bm.count_ones(), 0);
    }
}
