//! Property tests for the block layer: storage equivalence, tracker
//! completeness (the correctness property migration rests on), pending
//! queue conservation, MetaDisk synchronization, and ReplicaTable
//! agreement with a naive reference model.

use std::collections::HashMap;
use std::sync::Arc;

use block_bitmap::{AtomicBitmap, DirtyMap};
use proptest::prelude::*;
use vdisk::{
    stamp_bytes, DenseStorage, DomainId, IoRequest, MetaDisk, PendingQueue, ReplicaTable,
    SparseStorage, Storage, TrackedDisk, VirtualDisk,
};

const BLOCKS: usize = 64;
const BS: usize = 512;

proptest! {
    /// Dense and sparse storage are observationally identical under any
    /// write sequence.
    #[test]
    fn dense_equals_sparse(writes in prop::collection::vec((0usize..BLOCKS, 0u64..50), 0..100)) {
        let mut dense = DenseStorage::new(BS, BLOCKS);
        let mut sparse = SparseStorage::new(BS, BLOCKS);
        for &(b, stamp) in &writes {
            let data = stamp_bytes(b, stamp, BS);
            dense.write_block(b, &data);
            sparse.write_block(b, &data);
        }
        let mut a = vec![0u8; BS];
        let mut s = vec![0u8; BS];
        for b in 0..BLOCKS {
            dense.read_block(b, &mut a);
            sparse.read_block(b, &mut s);
            prop_assert_eq!(&a, &s, "block {} diverged", b);
        }
    }

    /// The tracker never misses a guest write while enabled: after any
    /// interleaving of writes and drains, union(drains) ∪ tracker ⊇ all
    /// written blocks — the property that makes iterative pre-copy sound.
    #[test]
    fn tracker_never_loses_a_write(
        ops in prop::collection::vec((0usize..BLOCKS, proptest::bool::ANY), 1..200),
    ) {
        let disk = TrackedDisk::new(Arc::new(VirtualDisk::dense(BS, BLOCKS)));
        let bm = Arc::new(AtomicBitmap::new(BLOCKS));
        disk.attach_tracker(Arc::clone(&bm), Some(DomainId(1)));
        disk.enable_tracking();
        let mut written = std::collections::HashSet::new();
        let mut drained = block_bitmap::FlatBitmap::new(BLOCKS);
        for &(b, drain_now) in &ops {
            disk.submit(IoRequest::write(b, DomainId(1)), Some(&stamp_bytes(b, 1, BS)));
            written.insert(b);
            if drain_now {
                drained.union_with(&bm.snapshot_and_clear());
            }
        }
        drained.union_with(&bm.snapshot_and_clear());
        for &b in &written {
            prop_assert!(block_bitmap::DirtyMap::get(&drained, b), "write to {} lost", b);
        }
    }

    /// Pending queue conserves requests: everything pushed is taken
    /// exactly once, in per-block FIFO order.
    #[test]
    fn pending_queue_conserves(blocks in prop::collection::vec(0usize..16, 0..100)) {
        let mut q = PendingQueue::new();
        let mut expected: HashMap<usize, usize> = HashMap::new();
        for (i, &b) in blocks.iter().enumerate() {
            q.push(IoRequest::read(b, DomainId(i as u32 % 4)));
            *expected.entry(b).or_default() += 1;
        }
        prop_assert_eq!(q.len(), blocks.len());
        let mut taken = 0usize;
        for b in 0..16 {
            let got = q.take_for_block(b);
            prop_assert_eq!(got.len(), expected.get(&b).copied().unwrap_or(0));
            prop_assert!(got.iter().all(|r| r.block == b));
            taken += got.len();
        }
        prop_assert_eq!(taken, blocks.len());
        prop_assert!(q.is_empty());
    }

    /// MetaDisk diff/copy synchronization converges for any write split
    /// across two disks, and `content_equals` agrees with `diff_blocks`.
    #[test]
    fn metadisk_sync_converges(
        src_writes in prop::collection::vec(0usize..BLOCKS, 0..80),
        dst_writes in prop::collection::vec(0usize..BLOCKS, 0..80),
    ) {
        let mut src = MetaDisk::new(BLOCKS);
        let mut dst = MetaDisk::new(BLOCKS);
        for &b in &src_writes {
            src.write(b);
        }
        for &b in &dst_writes {
            dst.write(b);
        }
        let diff = src.diff_blocks(&dst);
        prop_assert_eq!(diff.is_empty(), src.content_equals(&dst));
        for b in diff {
            dst.copy_block_from(&src, b);
        }
        prop_assert!(src.content_equals(&dst));
        prop_assert!(dst.diff_blocks(&src).is_empty());
    }

    /// A tracked read never mutates the disk or the bitmap.
    #[test]
    fn reads_are_pure(reads in prop::collection::vec(0usize..BLOCKS, 1..50)) {
        let disk = TrackedDisk::new(Arc::new(VirtualDisk::dense(BS, BLOCKS)));
        let bm = Arc::new(AtomicBitmap::new(BLOCKS));
        disk.attach_tracker(Arc::clone(&bm), None);
        disk.enable_tracking();
        let before = disk.disk().fingerprint_all();
        for &b in &reads {
            disk.submit(IoRequest::read(b, DomainId(1)), None);
        }
        prop_assert_eq!(disk.disk().fingerprint_all(), before);
        prop_assert_eq!(bm.count_ones(), 0);
    }

    /// ReplicaTable agrees with a naive reference model (a plain map of
    /// generation-vector snapshots) under any interleaving of guest
    /// writes, departure recordings, and replica consumption — the
    /// contract both the IM-aware scheduler and the block directory are
    /// built on.
    #[test]
    fn replica_table_matches_naive_model(
        ops in prop::collection::vec(
            (0u8..3, 0u64..3, 0u64..4, 0usize..BLOCKS),
            0..150,
        ),
    ) {
        const VMS: u64 = 3;
        const SITES: u64 = 4;
        let mut table = ReplicaTable::new();
        // The reference: (vm, site) -> (generation snapshot, departures).
        let mut naive: HashMap<(u64, u64), (Vec<u32>, u64)> = HashMap::new();
        // One live image per VM, shared by both models.
        let mut live: Vec<MetaDisk> = (0..VMS).map(|_| MetaDisk::new(BLOCKS)).collect();
        for &(op, vm, site, block) in &ops {
            match op {
                // A guest write on the live image.
                0 => {
                    live[vm as usize].write(block);
                }
                // The VM departs `site`, leaving today's image behind.
                1 => {
                    table.record(vm, site, live[vm as usize].clone());
                    let snapshot: Vec<u32> =
                        (0..BLOCKS).map(|b| live[vm as usize].generation(b)).collect();
                    let e = naive.entry((vm, site)).or_insert((Vec::new(), 0));
                    *e = (snapshot, e.1 + 1);
                }
                // An incremental migration consumes the stale copy.
                _ => {
                    let took = table.take(vm, site);
                    prop_assert_eq!(took.is_some(), naive.remove(&(vm, site)).is_some());
                }
            }
        }
        prop_assert_eq!(table.len(), naive.len());
        prop_assert_eq!(table.is_empty(), naive.is_empty());
        for vm in 0..VMS {
            let mut expected_sites: Vec<u64> = naive
                .keys()
                .filter(|(v, _)| *v == vm)
                .map(|&(_, s)| s)
                .collect();
            expected_sites.sort_unstable();
            prop_assert_eq!(table.sites_with_replica(vm), expected_sites);
            for site in 0..SITES {
                match naive.get(&(vm, site)) {
                    None => {
                        prop_assert!(!table.has(vm, site));
                        prop_assert!(table.get(vm, site).is_none());
                        prop_assert!(table.stale_bitmap(vm, site, &live[vm as usize]).is_none());
                        // §V: no usable replica means an all-set worklist.
                        prop_assert_eq!(
                            table
                                .first_pass_bitmap(vm, site, &live[vm as usize])
                                .count_ones(),
                            BLOCKS
                        );
                    }
                    Some((snapshot, departures)) => {
                        prop_assert!(table.has(vm, site));
                        let r = table.get(vm, site).expect("naive says present");
                        prop_assert_eq!(r.departures, *departures);
                        let expected_stale: Vec<usize> = (0..BLOCKS)
                            .filter(|&b| live[vm as usize].generation(b) != snapshot[b])
                            .collect();
                        let bm = table
                            .stale_bitmap(vm, site, &live[vm as usize])
                            .expect("usable replica");
                        prop_assert_eq!(bm.to_indices(), expected_stale.clone());
                        prop_assert_eq!(
                            table.stale_count(vm, site, &live[vm as usize]),
                            Some(expected_stale.len())
                        );
                        prop_assert_eq!(
                            table
                                .first_pass_bitmap(vm, site, &live[vm as usize])
                                .to_indices(),
                            expected_stale
                        );
                    }
                }
            }
        }
    }

    /// A replica of a resized disk reads as absent from every staleness
    /// query (`None` / all-set worklist), while the entry itself — and
    /// its departure count — survives for when the geometry matches
    /// again.
    #[test]
    fn replica_table_geometry_mismatch_is_absence(
        records in prop::collection::vec((0u64..3, 0u64..3), 1..20),
        grow in 1usize..32,
    ) {
        let mut table = ReplicaTable::new();
        for &(vm, site) in &records {
            table.record(vm, site, MetaDisk::new(BLOCKS));
        }
        let resized = MetaDisk::new(BLOCKS + grow);
        for &(vm, site) in &records {
            prop_assert!(table.has(vm, site), "the entry itself survives");
            prop_assert!(table.stale_bitmap(vm, site, &resized).is_none());
            prop_assert!(table.stale_count(vm, site, &resized).is_none());
            prop_assert_eq!(
                table.first_pass_bitmap(vm, site, &resized).count_ones(),
                BLOCKS + grow
            );
        }
    }
}
