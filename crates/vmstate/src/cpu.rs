//! CPU context blob.

use serde::{Deserialize, Serialize};

/// Opaque CPU state (registers, FPU/SSE context, per-vCPU hypervisor
/// state). The migration engine only needs its size — it is transferred
/// once, during freeze-and-copy — and a checksum so tests can verify it
/// arrived intact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuState {
    vcpus: u32,
    context: Vec<u8>,
}

impl CpuState {
    /// Per-vCPU context size: a generous envelope for x86 register state,
    /// FPU/SSE area and hypervisor bookkeeping (Xen's is of this order).
    pub const CONTEXT_BYTES_PER_VCPU: usize = 8 * 1024;

    /// Fresh state for `vcpus` virtual CPUs, zero-initialized.
    ///
    /// # Panics
    /// Panics when `vcpus == 0`.
    pub fn new(vcpus: u32) -> Self {
        assert!(vcpus > 0, "a VM needs at least one vCPU");
        Self {
            vcpus,
            context: vec![0; vcpus as usize * Self::CONTEXT_BYTES_PER_VCPU],
        }
    }

    /// Number of virtual CPUs.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// Size of the state on the wire.
    pub fn size_bytes(&self) -> usize {
        self.context.len()
    }

    /// Mutate the context (tests use this to verify transfer fidelity).
    pub fn scribble(&mut self, seed: u64) {
        for (i, b) in self.context.iter_mut().enumerate() {
            *b = (seed.rotate_left((i % 61) as u32) >> (i % 7)) as u8;
        }
    }

    /// FNV-1a checksum of the context.
    pub fn checksum(&self) -> u64 {
        vdisk::fingerprint_block(&self.context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing() {
        let s = CpuState::new(2);
        assert_eq!(s.vcpus(), 2);
        assert_eq!(s.size_bytes(), 2 * CpuState::CONTEXT_BYTES_PER_VCPU);
    }

    #[test]
    fn scribble_changes_checksum() {
        let mut s = CpuState::new(1);
        let c0 = s.checksum();
        s.scribble(42);
        assert_ne!(s.checksum(), c0);
        let copy = s.clone();
        assert_eq!(copy.checksum(), s.checksum());
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpus_panics() {
        CpuState::new(0);
    }
}
