//! VM identity and run-state machine.

use serde::{Deserialize, Serialize};

use crate::{CpuState, DomainId, GuestMemory};

/// Run state of a domain during migration.
///
/// Downtime, the paper's headline metric, is precisely the interval a
/// domain spends in [`VmRunState::Suspended`]: from the suspend on the
/// source to the resume on the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmRunState {
    /// Executing normally.
    Running,
    /// Paused for freeze-and-copy; no guest progress, no I/O.
    Suspended,
    /// Destroyed on this host after a completed migration away.
    Retired,
}

/// Errors from invalid lifecycle transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainError {
    /// The requested transition is not legal from the current state.
    InvalidTransition {
        /// State the domain was in.
        from: VmRunState,
        /// Operation that was attempted.
        attempted: &'static str,
    },
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidTransition { from, attempted } => {
                write!(f, "cannot {attempted} a domain in state {from:?}")
            }
        }
    }
}

impl std::error::Error for DomainError {}

/// A guest VM: identity, memory, CPU context, and run state.
#[derive(Debug, Clone)]
pub struct Domain {
    id: DomainId,
    name: String,
    state: VmRunState,
    /// Guest RAM.
    pub memory: GuestMemory,
    /// vCPU contexts.
    pub cpu: CpuState,
}

impl Domain {
    /// Create a running domain.
    pub fn new(id: DomainId, name: impl Into<String>, memory: GuestMemory, cpu: CpuState) -> Self {
        Self {
            id,
            name: name.into(),
            state: VmRunState::Running,
            memory,
            cpu,
        }
    }

    /// The paper's guest: 512 MB RAM, 1 vCPU.
    pub fn paper_guest(id: DomainId, name: impl Into<String>) -> Self {
        Self::new(id, name, GuestMemory::paper_guest(), CpuState::new(1))
    }

    /// Domain identifier.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current run state.
    pub fn state(&self) -> VmRunState {
        self.state
    }

    /// `true` while the guest executes (and can dirty pages/blocks).
    pub fn is_running(&self) -> bool {
        self.state == VmRunState::Running
    }

    /// Suspend for freeze-and-copy.
    pub fn suspend(&mut self) -> Result<(), DomainError> {
        match self.state {
            VmRunState::Running => {
                self.state = VmRunState::Suspended;
                Ok(())
            }
            from => Err(DomainError::InvalidTransition {
                from,
                attempted: "suspend",
            }),
        }
    }

    /// Resume execution (on the destination, in a migration).
    pub fn resume(&mut self) -> Result<(), DomainError> {
        match self.state {
            VmRunState::Suspended => {
                self.state = VmRunState::Running;
                Ok(())
            }
            from => Err(DomainError::InvalidTransition {
                from,
                attempted: "resume",
            }),
        }
    }

    /// Retire the source-side instance once migration completes.
    pub fn retire(&mut self) -> Result<(), DomainError> {
        match self.state {
            VmRunState::Suspended | VmRunState::Running => {
                self.state = VmRunState::Retired;
                Ok(())
            }
            from => Err(DomainError::InvalidTransition {
                from,
                attempted: "retire",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guest() -> Domain {
        Domain::new(
            DomainId(1),
            "test-vm",
            GuestMemory::new(4096, 64),
            CpuState::new(1),
        )
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut d = guest();
        assert!(d.is_running());
        d.suspend().unwrap();
        assert_eq!(d.state(), VmRunState::Suspended);
        assert!(!d.is_running());
        d.resume().unwrap();
        assert!(d.is_running());
        d.suspend().unwrap();
        d.retire().unwrap();
        assert_eq!(d.state(), VmRunState::Retired);
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut d = guest();
        assert!(d.resume().is_err()); // running -> resume
        d.suspend().unwrap();
        assert!(d.suspend().is_err()); // suspended -> suspend
        d.retire().unwrap();
        assert!(d.resume().is_err()); // retired -> resume
        assert!(d.retire().is_err()); // retired -> retire
        let err = d.suspend().unwrap_err();
        assert!(err.to_string().contains("suspend"));
    }

    #[test]
    fn paper_guest_shape() {
        let d = Domain::paper_guest(DomainId(1), "vm");
        assert_eq!(d.memory.total_bytes(), 512 * 1024 * 1024);
        assert_eq!(d.cpu.vcpus(), 1);
        assert_eq!(d.name(), "vm");
        assert_eq!(d.id(), DomainId(1));
    }
}
