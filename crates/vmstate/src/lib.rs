//! Guest domain model: memory with dirty-page tracking, CPU state, and the
//! VM lifecycle the migration engine drives.
//!
//! The paper migrates a Xen DomainU with 512 MB of RAM and a 40 GB VBD.
//! Memory and CPU-state migration reuse Xen's iterative pre-copy (Clark et
//! al., NSDI'05); this crate supplies the state those algorithms operate
//! on:
//!
//! * [`CpuState`] — the opaque register/context blob transferred during
//!   freeze-and-copy.
//! * [`GuestMemory`] — page-granular memory with a dirty-page bitmap (the
//!   shadow-page-table log-dirty analogue) and generation counters for
//!   consistency checks.
//! * [`WssModel`] — a writable-working-set dirtying model: a hot set of
//!   pages written repeatedly plus a cold tail, the empirically observed
//!   behaviour that makes iterative pre-copy converge.
//! * [`Domain`] — VM identity plus the run-state machine
//!   (Running → Suspended → Resumed) whose transitions delimit downtime.
//! * [`LiveRam`] — byte-real, write-tracked RAM for the live (threaded)
//!   migration prototype.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod domain;
mod live_ram;
mod memory;
mod wss;

pub use cpu::CpuState;
pub use domain::{Domain, DomainError, VmRunState};
pub use live_ram::LiveRam;
pub use memory::GuestMemory;
pub use vdisk::DomainId;
pub use wss::WssModel;
