//! Byte-real guest RAM for live (threaded) migration.
//!
//! The simulated engine models memory as generation counters
//! ([`crate::GuestMemory`]); live mode needs the real thing: actual page
//! contents that guest threads write while the migration thread copies
//! pages out — Xen's log-dirty mode rebuilt in userspace. Page writes are
//! intercepted exactly like disk writes in `vdisk::TrackedDisk`: an
//! atomic dirty bitmap records them while tracking is enabled, and the
//! migration loop drains it at every pre-copy iteration boundary.

use std::sync::atomic::{AtomicBool, Ordering};

use block_bitmap::{AtomicBitmap, FlatBitmap};
use parking_lot::RwLock;

/// Thread-safe, write-tracked guest RAM.
pub struct LiveRam {
    page_size: usize,
    num_pages: usize,
    bytes: RwLock<Vec<u8>>,
    dirty: AtomicBitmap,
    tracking: AtomicBool,
}

impl LiveRam {
    /// Allocate zeroed RAM of `num_pages` × `page_size` bytes.
    ///
    /// # Panics
    /// Panics when `page_size == 0`.
    pub fn new(page_size: usize, num_pages: usize) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        Self {
            page_size,
            num_pages,
            bytes: RwLock::new(vec![0; page_size * num_pages]),
            dirty: AtomicBitmap::new(num_pages),
            tracking: AtomicBool::new(false),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Start recording page writes (log-dirty on).
    pub fn enable_tracking(&self) {
        self.tracking.store(true, Ordering::Release);
    }

    /// Stop recording page writes.
    pub fn disable_tracking(&self) {
        self.tracking.store(false, Ordering::Release);
    }

    /// Guest write: overwrite page `idx`, marking it dirty when tracking.
    ///
    /// # Panics
    /// Panics when `idx` is out of range or the data is not page-sized.
    pub fn write_page(&self, idx: usize, data: &[u8]) {
        assert!(idx < self.num_pages, "page {idx} out of range");
        assert_eq!(data.len(), self.page_size, "buffer/page size mismatch");
        {
            let mut guard = self.bytes.write();
            let start = idx * self.page_size;
            guard[start..start + self.page_size].copy_from_slice(data);
        }
        if self.tracking.load(Ordering::Acquire) {
            self.dirty.set(idx);
        }
    }

    /// Read page `idx` into a fresh buffer.
    ///
    /// # Panics
    /// Panics when `idx` is out of range.
    pub fn read_page(&self, idx: usize) -> Vec<u8> {
        assert!(idx < self.num_pages, "page {idx} out of range");
        let guard = self.bytes.read();
        let start = idx * self.page_size;
        guard[start..start + self.page_size].to_vec()
    }

    /// Copy several pages into one contiguous buffer (a `MemPages`
    /// payload), in the order given.
    pub fn read_pages(&self, pages: &[usize]) -> Vec<u8> {
        let guard = self.bytes.read();
        let mut out = Vec::with_capacity(pages.len() * self.page_size);
        for &p in pages {
            assert!(p < self.num_pages, "page {p} out of range");
            let start = p * self.page_size;
            out.extend_from_slice(&guard[start..start + self.page_size]);
        }
        out
    }

    /// Apply a received `MemPages` payload (migration-side write: not
    /// tracked, mirroring how pushed blocks bypass the guest trackers).
    ///
    /// # Panics
    /// Panics on size mismatch or out-of-range pages.
    pub fn apply_pages(&self, pages: &[usize], payload: &[u8]) {
        assert_eq!(
            payload.len(),
            pages.len() * self.page_size,
            "payload/page-count mismatch"
        );
        let mut guard = self.bytes.write();
        for (i, &p) in pages.iter().enumerate() {
            assert!(p < self.num_pages, "page {p} out of range");
            let dst = p * self.page_size;
            guard[dst..dst + self.page_size]
                .copy_from_slice(&payload[i * self.page_size..(i + 1) * self.page_size]);
        }
    }

    /// Drain the dirty-page set — one pre-copy iteration boundary.
    pub fn drain_dirty(&self) -> FlatBitmap {
        self.dirty.snapshot_and_clear()
    }

    /// Dirty pages right now (racy under concurrent writers).
    pub fn dirty_count(&self) -> usize {
        self.dirty.count_ones()
    }

    /// Indices of pages whose contents differ from `other`.
    ///
    /// # Panics
    /// Panics when geometries differ.
    pub fn diff_pages(&self, other: &LiveRam) -> Vec<usize> {
        assert_eq!(self.page_size, other.page_size, "page sizes must match");
        assert_eq!(self.num_pages, other.num_pages, "page counts must match");
        let a = self.bytes.read();
        let b = other.bytes.read();
        (0..self.num_pages)
            .filter(|&p| {
                let s = p * self.page_size;
                a[s..s + self.page_size] != b[s..s + self.page_size]
            })
            .collect()
    }

    /// `true` when every page matches `other`.
    pub fn content_equals(&self, other: &LiveRam) -> bool {
        self.diff_pages(other).is_empty()
    }
}

impl std::fmt::Debug for LiveRam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveRam")
            .field("page_size", &self.page_size)
            .field("num_pages", &self.num_pages)
            .field("dirty", &self.dirty_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_bitmap::DirtyMap as _;
    use std::sync::Arc;

    fn page(v: u8, size: usize) -> Vec<u8> {
        vec![v; size]
    }

    #[test]
    fn write_read_roundtrip() {
        let ram = LiveRam::new(256, 8);
        ram.write_page(3, &page(7, 256));
        assert_eq!(ram.read_page(3), page(7, 256));
        assert_eq!(ram.read_page(2), page(0, 256));
    }

    #[test]
    fn tracking_gates_dirty_recording() {
        let ram = LiveRam::new(256, 8);
        ram.write_page(1, &page(1, 256));
        assert_eq!(ram.dirty_count(), 0, "untracked write must not record");
        ram.enable_tracking();
        ram.write_page(2, &page(2, 256));
        ram.write_page(2, &page(3, 256));
        assert_eq!(ram.drain_dirty().to_indices(), vec![2]);
        assert_eq!(ram.dirty_count(), 0);
    }

    #[test]
    fn batch_read_apply_roundtrip() {
        let src = LiveRam::new(128, 16);
        let dst = LiveRam::new(128, 16);
        for p in [1usize, 5, 9] {
            src.write_page(p, &page(p as u8 + 1, 128));
        }
        let pages = [1usize, 5, 9];
        let payload = src.read_pages(&pages);
        dst.apply_pages(&pages, &payload);
        assert!(src.content_equals(&dst));
    }

    #[test]
    fn diff_pages_finds_divergence() {
        let a = LiveRam::new(128, 4);
        let b = LiveRam::new(128, 4);
        assert!(a.content_equals(&b));
        a.write_page(2, &page(9, 128));
        assert_eq!(a.diff_pages(&b), vec![2]);
    }

    #[test]
    fn iterative_precopy_pattern_converges() {
        // Pre-copy loop: full pass, then dirty-only passes.
        let src = Arc::new(LiveRam::new(128, 32));
        let dst = LiveRam::new(128, 32);
        src.enable_tracking();
        for p in 0..32 {
            src.write_page(p, &page(p as u8, 128));
        }
        // Iteration 1: everything.
        let all: Vec<usize> = (0..32).collect();
        src.drain_dirty();
        dst.apply_pages(&all, &src.read_pages(&all));
        // Guest dirties during the pass.
        src.write_page(7, &page(77, 128));
        src.write_page(8, &page(88, 128));
        let dirty: Vec<usize> = src.drain_dirty().to_indices();
        assert_eq!(dirty, vec![7, 8]);
        dst.apply_pages(&dirty, &src.read_pages(&dirty));
        assert!(src.content_equals(&dst));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        LiveRam::new(128, 4).write_page(4, &page(0, 128));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_sized_write_panics() {
        LiveRam::new(128, 4).write_page(0, &page(0, 64));
    }
}
