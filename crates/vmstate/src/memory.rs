//! Page-granular guest memory with log-dirty tracking.

use block_bitmap::{DirtyMap, FlatBitmap};

/// Guest memory model: one generation counter per page plus a dirty-page
/// bitmap, mirroring Xen's log-dirty mode (the shadow page tables mark a
/// page dirty on first write after each bitmap drain).
///
/// Like [`vdisk::MetaDisk`], contents are modelled as generations: the
/// memory pre-copy algorithm needs to know *which pages changed*, not what
/// bytes they hold, and a 512 MB guest at 4 KiB pages is 131 072 pages —
/// cheap to track exactly.
#[derive(Debug, Clone)]
pub struct GuestMemory {
    page_size: usize,
    generations: Vec<u32>,
    dirty: FlatBitmap,
    next_gen: u32,
}

impl GuestMemory {
    /// Create memory of `num_pages` pages of `page_size` bytes, all at
    /// generation 0 and clean.
    ///
    /// # Panics
    /// Panics when `page_size == 0`.
    pub fn new(page_size: usize, num_pages: usize) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        Self {
            page_size,
            generations: vec![0; num_pages],
            dirty: FlatBitmap::new(num_pages),
            next_gen: 1,
        }
    }

    /// The paper's guest: 512 MB of 4 KiB pages.
    pub fn paper_guest() -> Self {
        Self::new(4096, 512 * 1024 * 1024 / 4096)
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.generations.len()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.page_size as u64 * self.num_pages() as u64
    }

    /// Guest write to `page`: bump its generation, mark it dirty.
    ///
    /// # Panics
    /// Panics when `page` is out of range.
    pub fn touch(&mut self, page: usize) {
        self.generations[page] = self.next_gen;
        self.next_gen += 1;
        self.dirty.set(page);
    }

    /// Current generation of `page`.
    pub fn generation(&self, page: usize) -> u32 {
        self.generations[page]
    }

    /// Number of pages currently marked dirty.
    pub fn dirty_count(&self) -> usize {
        self.dirty.count_ones()
    }

    /// Drain the dirty bitmap: returns the dirty set and resets tracking —
    /// one iteration boundary of Xen's pre-copy loop.
    pub fn drain_dirty(&mut self) -> FlatBitmap {
        std::mem::replace(&mut self.dirty, FlatBitmap::new(self.generations.len()))
    }

    /// Peek at the dirty bitmap without resetting.
    pub fn dirty_map(&self) -> &FlatBitmap {
        &self.dirty
    }

    /// Copy one page's generation from `src` — the simulated transfer of a
    /// page between hosts.
    ///
    /// # Panics
    /// Panics when geometries differ or `page` is out of range.
    pub fn copy_page_from(&mut self, src: &GuestMemory, page: usize) {
        assert_eq!(
            self.num_pages(),
            src.num_pages(),
            "memory geometries must match"
        );
        self.generations[page] = src.generations[page];
    }

    /// Pages whose generations differ from `other`.
    pub fn diff_pages(&self, other: &GuestMemory) -> Vec<usize> {
        assert_eq!(
            self.num_pages(),
            other.num_pages(),
            "memory geometries must match"
        );
        (0..self.num_pages())
            .filter(|&i| self.generations[i] != other.generations[i])
            .collect()
    }

    /// `true` when every page matches `other`.
    pub fn content_equals(&self, other: &GuestMemory) -> bool {
        self.generations == other.generations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_guest_geometry() {
        let m = GuestMemory::paper_guest();
        assert_eq!(m.num_pages(), 131_072);
        assert_eq!(m.total_bytes(), 512 * 1024 * 1024);
    }

    #[test]
    fn touch_marks_dirty_and_bumps_generation() {
        let mut m = GuestMemory::new(4096, 16);
        assert_eq!(m.dirty_count(), 0);
        m.touch(3);
        m.touch(3);
        m.touch(7);
        assert_eq!(m.dirty_count(), 2);
        assert!(m.generation(3) > 0);
        assert!(m.dirty_map().get(3));
    }

    #[test]
    fn drain_resets_tracking_but_keeps_contents() {
        let mut m = GuestMemory::new(4096, 16);
        m.touch(5);
        let g = m.generation(5);
        let drained = m.drain_dirty();
        assert_eq!(drained.to_indices(), vec![5]);
        assert_eq!(m.dirty_count(), 0);
        assert_eq!(m.generation(5), g);
    }

    #[test]
    fn precopy_sync_pattern() {
        // Simulate one migration round: copy all, then copy dirty-only.
        let mut src = GuestMemory::new(4096, 32);
        let mut dst = GuestMemory::new(4096, 32);
        for p in [1usize, 9, 9, 20] {
            src.touch(p);
        }
        src.drain_dirty();
        // Full first pass.
        for p in 0..32 {
            dst.copy_page_from(&src, p);
        }
        assert!(src.content_equals(&dst));
        // Guest dirties more during the pass; second pass copies only those.
        src.touch(2);
        src.touch(9);
        let dirty = src.drain_dirty();
        assert_eq!(dst.diff_pages(&src), vec![2, 9]);
        for p in dirty.to_indices() {
            dst.copy_page_from(&src, p);
        }
        assert!(src.content_equals(&dst));
    }

    #[test]
    #[should_panic(expected = "geometries must match")]
    fn geometry_mismatch_panics() {
        let a = GuestMemory::new(4096, 4);
        let b = GuestMemory::new(4096, 8);
        a.content_equals(&b);
        a.diff_pages(&b);
    }
}
