//! Writable-working-set dirtying model.
//!
//! Iterative memory pre-copy converges because real guests concentrate
//! their writes on a *writable working set* (WWS) much smaller than total
//! RAM (Clark et al., NSDI'05). [`WssModel`] reproduces that behaviour: a
//! configurable fraction of pages forms a hot set absorbing most writes;
//! the rest of RAM takes a uniform trickle.

use des::dist::HotCold;
use des::{SimDuration, SimRng};

use crate::GuestMemory;

/// Parameters of the WSS dirtying model.
#[derive(Debug, Clone)]
pub struct WssModel {
    /// Page writes per second of guest execution.
    pub writes_per_sec: f64,
    hot: HotCold,
}

impl WssModel {
    /// Build a model over `num_pages` pages: `hot_fraction` of the pages
    /// receive `hot_prob` of the writes, at `writes_per_sec` overall.
    ///
    /// # Panics
    /// Panics when `num_pages == 0`, `hot_fraction` is outside `(0, 1]`,
    /// or `writes_per_sec` is negative.
    pub fn new(num_pages: usize, hot_fraction: f64, hot_prob: f64, writes_per_sec: f64) -> Self {
        assert!(num_pages > 0, "page space must be non-empty");
        assert!(
            hot_fraction > 0.0 && hot_fraction <= 1.0,
            "hot fraction must be in (0, 1]"
        );
        assert!(writes_per_sec >= 0.0, "write rate must be non-negative");
        let hot_size = ((num_pages as f64 * hot_fraction).ceil() as u64).max(1);
        Self {
            writes_per_sec,
            hot: HotCold::new(num_pages as u64, 0, hot_size, hot_prob),
        }
    }

    /// An idle guest (no memory dirtying).
    pub fn idle(num_pages: usize) -> Self {
        Self::new(num_pages, 0.01, 1.0, 0.0)
    }

    /// Number of page writes expected during `dt` (deterministic mean;
    /// the per-page placement is what is random).
    pub fn writes_in(&self, dt: SimDuration) -> u64 {
        (self.writes_per_sec * dt.as_secs_f64()).round() as u64
    }

    /// Apply `dt` of guest execution to `mem`, dirtying pages per the
    /// model. Returns the number of write events applied.
    pub fn dirty_for(&self, mem: &mut GuestMemory, dt: SimDuration, rng: &mut SimRng) -> u64 {
        let n = self.writes_in(dt);
        for _ in 0..n {
            mem.touch(self.hot.sample(rng) as usize);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_bitmap::DirtyMap as _;

    #[test]
    fn write_count_scales_with_time() {
        let m = WssModel::new(1000, 0.1, 0.9, 500.0);
        assert_eq!(m.writes_in(SimDuration::from_secs(2)), 1000);
        assert_eq!(m.writes_in(SimDuration::from_millis(500)), 250);
    }

    #[test]
    fn dirtying_concentrates_on_hot_set() {
        let model = WssModel::new(10_000, 0.05, 0.95, 10_000.0);
        let mut mem = GuestMemory::new(4096, 10_000);
        let mut rng = SimRng::new(1);
        model.dirty_for(&mut mem, SimDuration::from_secs(1), &mut rng);
        // 10k writes over a 500-page hot set: dirty count must be far less
        // than the write count (rewrites) and concentrated low.
        let dirty = mem.drain_dirty().to_indices();
        assert!(dirty.len() < 2_000, "dirty {} pages", dirty.len());
        let in_hot = dirty.iter().filter(|&&p| p < 500).count();
        assert!(in_hot as f64 > 0.4 * dirty.len() as f64);
    }

    #[test]
    fn idle_guest_never_dirties() {
        let model = WssModel::idle(100);
        let mut mem = GuestMemory::new(4096, 100);
        let mut rng = SimRng::new(2);
        let n = model.dirty_for(&mut mem, SimDuration::from_secs(100), &mut rng);
        assert_eq!(n, 0);
        assert_eq!(mem.dirty_count(), 0);
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn bad_fraction_panics() {
        WssModel::new(100, 1.5, 0.5, 1.0);
    }
}
