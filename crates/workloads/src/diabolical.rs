//! Diabolical I/O workload (Bonnie++-like).
//!
//! §VI-C-3 migrates the VM while Bonnie++ runs: "a benchmark suite that
//! performs a number of simple tests for hard disk drive and file system
//! performance, including sequential output, sequential input, random
//! seeks…". It is the *closed-loop* workload: it issues I/O as fast as the
//! disk allows, so the migration stream and the benchmark fight for disk
//! bandwidth and both slow down — the mechanism behind Figure 6 and the
//! rate-limiting experiment.
//!
//! The phase structure mirrors Bonnie++: per-character sequential output
//! (`putc`), block sequential output (`write(2)`), `rewrite`, per-character
//! sequential input (`getc`), block sequential input, and random seeks.
//! Nominal standalone rates are taken from the paper's own Table III
//! (putc 47 740 KB/s, write(2) 96 122 KB/s, rewrite 26 125 KB/s).
//!
//! The test file is sized at twice guest RAM (Bonnie++'s rule: 1 GB for
//! the paper's 512 MB guest). `putc` and `write(2)` recreate the file —
//! the block allocator hands back a different extent — and `rewrite`
//! rewrites it in place, which lands the whole-run rewrite ratio near the
//! paper's 35.6 %.

use des::{SimDuration, SimRng};
use vmstate::WssModel;

use crate::{OpKind, TimedOp, Workload};

/// Bonnie++ phase labels, matching the series of Figure 6 / Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BonniePhase {
    /// Per-character sequential output.
    Putc,
    /// Block sequential output via `write(2)`.
    WriteBlock,
    /// Read-modify-write over the existing file.
    Rewrite,
    /// Per-character sequential input.
    Getc,
    /// Block sequential input.
    ReadBlock,
    /// Random seeks (mostly reads, ~10 % writes).
    Seeks,
}

impl BonniePhase {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Self::Putc => "putc",
            Self::WriteBlock => "write(2)",
            Self::Rewrite => "rewrite",
            Self::Getc => "getc",
            Self::ReadBlock => "read",
            Self::Seeks => "seeks",
        }
    }
}

const PHASES: [BonniePhase; 6] = [
    BonniePhase::Putc,
    BonniePhase::WriteBlock,
    BonniePhase::Rewrite,
    BonniePhase::Getc,
    BonniePhase::ReadBlock,
    BonniePhase::Seeks,
];

/// Closed-loop diabolical workload. See module docs for calibration.
#[derive(Debug)]
pub struct DiabolicalWorkload {
    /// putc/getc file extent (blocks).
    region_a: (u64, u64),
    /// write(2)/rewrite/read/seek file extent (blocks).
    region_b: (u64, u64),
    file_bytes: f64,
    phase_idx: usize,
    /// File bytes processed within the current phase.
    progress: f64,
    block_carry: f64,
}

impl DiabolicalWorkload {
    /// Paper-calibrated instance for a disk of `num_blocks` 4 KiB blocks.
    /// Bonnie++'s file is twice guest RAM — 1 GB on the paper's testbed;
    /// on smaller test disks it scales down to an eighth of the disk.
    ///
    /// # Panics
    /// Panics when the disk is smaller than ~32 MiB.
    pub fn paper_default(num_blocks: u64) -> Self {
        assert!(
            num_blocks >= 8_192,
            "diabolical workload needs at least ~32 MiB of disk"
        );
        // Bonnie++ sizes its file at twice guest RAM (1 GB for the 512 MB
        // guest); the run recreates it across phases, so each of the two
        // file extents is 512 MB.
        let file = (512 * 1024 * 1024u64).min(num_blocks / 8 * 4096);
        Self::with_file_size(num_blocks, file)
    }

    /// Instance with an explicit Bonnie++ file size in bytes.
    ///
    /// # Panics
    /// Panics when the disk cannot hold two files of that size.
    pub fn with_file_size(num_blocks: u64, file_bytes: u64) -> Self {
        let file_blocks = file_bytes / 4096;
        assert!(
            num_blocks >= file_blocks * 4,
            "disk too small for two {file_bytes}-byte test files"
        );
        let a_start = num_blocks * 2 / 5;
        let b_start = num_blocks * 3 / 5;
        Self {
            region_a: (a_start, file_blocks),
            region_b: (b_start, file_blocks),
            file_bytes: file_bytes as f64,
            phase_idx: 0,
            progress: 0.0,
            block_carry: 0.0,
        }
    }

    /// Current Bonnie++ phase.
    pub fn phase(&self) -> BonniePhase {
        PHASES[self.phase_idx]
    }

    /// Nominal standalone client-visible throughput of `phase`, bytes/s
    /// (the paper's Table III "Normal" row).
    pub fn nominal_visible(phase: BonniePhase) -> f64 {
        match phase {
            BonniePhase::Putc => 47_740.0 * 1024.0,
            BonniePhase::WriteBlock => 96_122.0 * 1024.0,
            BonniePhase::Rewrite => 26_125.0 * 1024.0,
            BonniePhase::Getc => 47_000.0 * 1024.0,
            BonniePhase::ReadBlock => 92_000.0 * 1024.0,
            BonniePhase::Seeks => 8_000.0 * 1024.0,
        }
    }

    /// Disk I/O bytes per client-visible byte (rewrite moves two bytes of
    /// disk I/O per file byte: a read plus a write).
    fn io_factor(phase: BonniePhase) -> f64 {
        match phase {
            BonniePhase::Rewrite => 2.0,
            _ => 1.0,
        }
    }

    /// Fraction of the phase's disk I/O that is writes.
    fn write_frac(phase: BonniePhase) -> f64 {
        match phase {
            BonniePhase::Putc | BonniePhase::WriteBlock => 1.0,
            BonniePhase::Rewrite => 0.5,
            BonniePhase::Getc | BonniePhase::ReadBlock => 0.0,
            BonniePhase::Seeks => 0.1,
        }
    }

    /// File bytes a phase processes before completing. Bonnie++'s seek
    /// phase performs a fixed number of random accesses, not a full file
    /// pass — a small fraction of the file's volume.
    fn phase_bytes(&self, phase: BonniePhase) -> f64 {
        match phase {
            BonniePhase::Seeks => self.file_bytes * 0.05,
            _ => self.file_bytes,
        }
    }

    fn region_for(&self, phase: BonniePhase) -> (u64, u64) {
        match phase {
            BonniePhase::Putc | BonniePhase::Getc => self.region_a,
            _ => self.region_b,
        }
    }
}

impl Workload for DiabolicalWorkload {
    fn name(&self) -> &'static str {
        "diabolical"
    }

    fn disk_demand(&self) -> f64 {
        let p = self.phase();
        Self::nominal_visible(p) * Self::io_factor(p)
    }

    fn closed_loop(&self) -> bool {
        true
    }

    fn ops_for(&mut self, dt: SimDuration, achieved: f64, rng: &mut SimRng) -> Vec<TimedOp> {
        let mut ops = Vec::new();
        let mut elapsed = 0.0;
        let dt_s = dt.as_secs_f64();
        // Walk phase by phase: the achieved disk rate bounds progress; a
        // finished phase hands the remaining time to the next one.
        while elapsed < dt_s - 1e-12 {
            let phase = self.phase();
            let io_rate = achieved.min(self.disk_demand());
            if io_rate <= 0.0 {
                break; // fully starved: no progress this interval
            }
            let file_rate = io_rate / Self::io_factor(phase);
            let remaining_file = self.phase_bytes(phase) - self.progress;
            let time_to_finish = remaining_file / file_rate;
            let span = time_to_finish.min(dt_s - elapsed);
            let file_bytes_done = file_rate * span;

            // Convert processed file bytes into block ops.
            let raw_blocks = self.block_carry + file_bytes_done / 4096.0;
            let nblocks = raw_blocks.floor() as u64;
            self.block_carry = raw_blocks - nblocks as f64;
            let (rstart, rlen) = self.region_for(phase);
            let start_block = rstart + (self.progress / 4096.0) as u64 % rlen;
            let wf = Self::write_frac(phase);
            for i in 0..nblocks {
                let block = match phase {
                    BonniePhase::Seeks => rstart + rng.below(rlen),
                    _ => rstart + (start_block - rstart + i) % rlen,
                };
                let at =
                    SimDuration::from_secs_f64(elapsed + span * (i as f64 + 0.5) / nblocks as f64);
                match phase {
                    BonniePhase::Rewrite => {
                        // Read-modify-write: both ops on the same block.
                        ops.push(TimedOp::new(at, OpKind::Read { block }));
                        ops.push(TimedOp::new(at, OpKind::Write { block }));
                    }
                    BonniePhase::Seeks => {
                        let kind = if rng.chance(wf) {
                            OpKind::Write { block }
                        } else {
                            OpKind::Read { block }
                        };
                        ops.push(TimedOp::new(at, kind));
                    }
                    _ if wf >= 1.0 => ops.push(TimedOp::new(at, OpKind::Write { block })),
                    _ => ops.push(TimedOp::new(at, OpKind::Read { block })),
                }
            }

            self.progress += file_bytes_done;
            elapsed += span;
            if self.progress >= self.phase_bytes(phase) - 1.0 {
                self.progress = 0.0;
                self.phase_idx = (self.phase_idx + 1) % PHASES.len();
            }
        }
        ops
    }

    fn client_throughput(&self, achieved: f64) -> f64 {
        let p = self.phase();
        (achieved / Self::io_factor(p)).min(Self::nominal_visible(p))
    }

    fn wss_model(&self, num_pages: usize) -> WssModel {
        // Page-cache churn: a tight, furiously rewritten hot set (block
        // buffers) that memory pre-copy can never fully flush — the reason
        // the paper's diabolical downtime (110 ms) is ~2x the web server's.
        WssModel::new(num_pages, 0.023, 0.98, 50_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const BLOCKS_40GB: u64 = 10 * 1024 * 1024;

    fn run_for(
        w: &mut DiabolicalWorkload,
        secs: u64,
        achieved: f64,
        rng: &mut SimRng,
    ) -> Vec<TimedOp> {
        let mut all = Vec::new();
        for _ in 0..secs {
            all.extend(w.ops_for(SimDuration::from_secs(1), achieved, rng));
        }
        all
    }

    #[test]
    fn phases_cycle_in_bonnie_order() {
        let mut w = DiabolicalWorkload::with_file_size(BLOCKS_40GB, 64 * 1024 * 1024);
        let mut rng = SimRng::new(1);
        let mut seen = vec![w.phase()];
        // Drive at full demand until we've wrapped the cycle. Steps must
        // be shorter than the shortest phase (seeks) to observe them all.
        for _ in 0..20_000 {
            let demand = w.disk_demand();
            w.ops_for(SimDuration::from_millis(100), demand, &mut rng);
            if *seen.last().unwrap() != w.phase() {
                seen.push(w.phase());
            }
            if seen.len() > 6 {
                break;
            }
        }
        assert_eq!(
            &seen[..7.min(seen.len())],
            &[
                BonniePhase::Putc,
                BonniePhase::WriteBlock,
                BonniePhase::Rewrite,
                BonniePhase::Getc,
                BonniePhase::ReadBlock,
                BonniePhase::Seeks,
                BonniePhase::Putc,
            ]
        );
    }

    #[test]
    fn closed_loop_volume_scales_with_achieved_rate() {
        // Drive the disk below every phase's nominal rate so the disk is
        // the binding constraint (putc alone is CPU-bound at ~47 MB/s).
        let mut w1 = DiabolicalWorkload::paper_default(BLOCKS_40GB);
        let mut w2 = DiabolicalWorkload::paper_default(BLOCKS_40GB);
        let mut rng1 = SimRng::new(2);
        let mut rng2 = SimRng::new(2);
        let full = run_for(&mut w1, 5, 20e6, &mut rng1).len();
        let half = run_for(&mut w2, 5, 10e6, &mut rng2).len();
        let ratio = full as f64 / half as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rewrite_ratio_near_paper_value() {
        // One full Bonnie++ cycle: putc writes file A, write(2) writes
        // file B, rewrite rewrites file B, seeks re-hit file B
        // => ratio ≈ 35 % (paper: 35.6 %).
        let mut w = DiabolicalWorkload::with_file_size(BLOCKS_40GB, 32 * 1024 * 1024);
        let mut rng = SimRng::new(3);
        let mut seen = HashSet::new();
        let mut rewrites = 0usize;
        let mut writes = 0usize;
        let mut left_putc = false;
        // Collect exactly one phase cycle (the paper measures one run).
        loop {
            if w.phase() != BonniePhase::Putc {
                left_putc = true;
            } else if left_putc {
                break;
            }
            let demand = w.disk_demand();
            for op in w.ops_for(SimDuration::from_millis(200), demand, &mut rng) {
                if let OpKind::Write { block } = op.kind {
                    writes += 1;
                    if !seen.insert(block) {
                        rewrites += 1;
                    }
                }
            }
        }
        let ratio = rewrites as f64 / writes as f64;
        assert!((0.28..0.43).contains(&ratio), "rewrite ratio {ratio}");
    }

    #[test]
    fn starved_disk_generates_nothing() {
        let mut w = DiabolicalWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(4);
        assert!(w
            .ops_for(SimDuration::from_secs(1), 0.0, &mut rng)
            .is_empty());
    }

    #[test]
    fn client_throughput_caps_at_nominal() {
        let w = DiabolicalWorkload::paper_default(BLOCKS_40GB);
        // Phase 0 is putc (nominal ~47 MB/s): a faster disk doesn't help.
        let putc_nominal = DiabolicalWorkload::nominal_visible(BonniePhase::Putc);
        assert_eq!(w.client_throughput(200e6), putc_nominal);
        assert!(w.client_throughput(20e6) < putc_nominal);
    }

    #[test]
    fn table3_normal_rates_encoded() {
        assert_eq!(
            DiabolicalWorkload::nominal_visible(BonniePhase::Putc),
            47_740.0 * 1024.0
        );
        assert_eq!(
            DiabolicalWorkload::nominal_visible(BonniePhase::WriteBlock),
            96_122.0 * 1024.0
        );
        assert_eq!(
            DiabolicalWorkload::nominal_visible(BonniePhase::Rewrite),
            26_125.0 * 1024.0
        );
    }

    #[test]
    fn ops_confined_to_file_regions() {
        let mut w = DiabolicalWorkload::with_file_size(BLOCKS_40GB, 16 * 1024 * 1024);
        let (a0, alen) = w.region_a;
        let (b0, blen) = w.region_b;
        let mut rng = SimRng::new(5);
        for op in run_for(&mut w, 30, 60e6, &mut rng) {
            let b = op.kind.block();
            let in_a = (a0..a0 + alen).contains(&b);
            let in_b = (b0..b0 + blen).contains(&b);
            assert!(in_a || in_b, "block {b} outside both regions");
        }
    }
}
