//! Kernel-build workload.
//!
//! §IV-A-2: "When we make a Linux kernel, about 11% of the write
//! operations rewrite those blocks written before." The build is the
//! paper's locality yardstick rather than a migration workload, but it is
//! a realistic moderate-I/O guest: a compiler streaming out object files
//! (fresh sequential-ish blocks) with occasional rewrites of headers,
//! dependency files and logs.

use des::dist::SequentialCursor;
use des::{SimDuration, SimRng};
use vmstate::WssModel;

use crate::pattern::Placement;
use crate::web::take_events;
use crate::{OpKind, TimedOp, Workload, WritePattern};

/// Linux-kernel-build-like workload: ~3 MB/s of writes at an 11 % rewrite
/// ratio, plus source-tree reads.
#[derive(Debug)]
pub struct KernelBuildWorkload {
    writes: WritePattern,
    source_region: (u64, u64),
    write_rate: f64,
    read_rate: f64,
    write_carry: f64,
    read_carry: f64,
    disk_demand: f64,
}

impl KernelBuildWorkload {
    /// Paper-calibrated instance for a disk of `num_blocks` 4 KiB blocks.
    /// At paper scale the build output region is 2 GiB; on smaller test
    /// disks both regions scale down proportionally.
    ///
    /// # Panics
    /// Panics when the disk is smaller than ~32 MiB.
    pub fn paper_default(num_blocks: u64) -> Self {
        assert!(
            num_blocks >= 8_192,
            "kernel build workload needs at least ~32 MiB of disk"
        );
        // Build output streams into a scratch region; sources are read
        // from a region below it.
        let out_start = num_blocks / 2;
        let out_len = 524_288.min(num_blocks / 4);
        let src_start = num_blocks / 8;
        let src_len = 262_144.min(num_blocks / 4);
        let write_rate = 700.0; // blocks/s ≈ 2.9 MB/s of writes
        let read_rate = 400.0; // blocks/s ≈ 1.6 MB/s of reads
        Self {
            writes: WritePattern::new(
                Placement::Sequential(SequentialCursor::new(out_start, out_len)),
                0.11,
                16_384,
            ),
            source_region: (src_start, src_len),
            write_rate,
            read_rate,
            write_carry: 0.0,
            read_carry: 0.0,
            disk_demand: (write_rate + read_rate) * 4096.0,
        }
    }
}

impl Workload for KernelBuildWorkload {
    fn name(&self) -> &'static str {
        "kernel-build"
    }

    fn disk_demand(&self) -> f64 {
        self.disk_demand
    }

    fn closed_loop(&self) -> bool {
        false
    }

    fn ops_for(&mut self, dt: SimDuration, achieved: f64, rng: &mut SimRng) -> Vec<TimedOp> {
        if achieved <= 0.0 && self.disk_demand > 0.0 {
            return Vec::new();
        }
        // The build slows proportionally when the disk is contended.
        let scale = (achieved / self.disk_demand).min(1.0);
        let mut ops = Vec::new();
        let writes = take_events(&mut self.write_carry, self.write_rate * scale, dt);
        for _ in 0..writes {
            let at = SimDuration::from_nanos(rng.below(dt.as_nanos().max(1)));
            ops.push(TimedOp::new(
                at,
                OpKind::Write {
                    block: self.writes.next_block(rng),
                },
            ));
        }
        let reads = take_events(&mut self.read_carry, self.read_rate * scale, dt);
        let (ss, sl) = self.source_region;
        for _ in 0..reads {
            let at = SimDuration::from_nanos(rng.below(dt.as_nanos().max(1)));
            ops.push(TimedOp::new(
                at,
                OpKind::Read {
                    block: ss + rng.below(sl),
                },
            ));
        }
        ops
    }

    fn client_throughput(&self, achieved: f64) -> f64 {
        // "Client throughput" for a build is its I/O progress rate.
        achieved.min(self.disk_demand)
    }

    fn wss_model(&self, num_pages: usize) -> WssModel {
        // Compiler working set: moderate churn.
        WssModel::new(num_pages, 0.03, 0.8, 4000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::rewrite_ratio;

    const BLOCKS_40GB: u64 = 10 * 1024 * 1024;

    #[test]
    fn rewrite_ratio_near_11_percent() {
        let mut w = KernelBuildWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(1);
        let mut ops = Vec::new();
        for _ in 0..120 {
            ops.extend(w.ops_for(SimDuration::from_secs(1), w.disk_demand(), &mut rng));
        }
        let r = rewrite_ratio(ops.iter().map(|o| o.kind));
        assert!((0.08..0.15).contains(&r), "rewrite ratio {r}");
    }

    #[test]
    fn contention_slows_the_build() {
        let mut w1 = KernelBuildWorkload::paper_default(BLOCKS_40GB);
        let mut w2 = KernelBuildWorkload::paper_default(BLOCKS_40GB);
        let mut rng1 = SimRng::new(2);
        let mut rng2 = SimRng::new(2);
        let full: usize = (0..10)
            .map(|_| {
                w1.ops_for(SimDuration::from_secs(1), w1.disk_demand(), &mut rng1)
                    .len()
            })
            .sum();
        let starved: usize = (0..10)
            .map(|_| {
                w2.ops_for(SimDuration::from_secs(1), w2.disk_demand() / 4.0, &mut rng2)
                    .len()
            })
            .sum();
        assert!(
            starved * 3 < full,
            "contended build not slowed: {starved} vs {full}"
        );
    }
}
