//! Workload generators for migration evaluation.
//!
//! §VI-B of the paper picks "typical workloads with different I/O loads":
//!
//! * a **dynamic web server** (SPECweb2005 Banking, 100 connections) —
//!   bursty writes with high locality (25.2 % of writes rewrite a block
//!   written before);
//! * a **low-latency video server** (Samba sharing a 210 MB video) —
//!   continuous sequential reads at under 500 kbps with only rare log
//!   writes;
//! * a **diabolical server** (Bonnie++) — phase-structured sequential
//!   output/input, rewrite, and random-seek storms that hammer the disk as
//!   fast as it will go (35.6 % rewrite ratio);
//!
//! plus the **kernel build** used for the locality measurement (11 %
//! rewrite ratio).
//!
//! Each generator implements [`Workload`]: a deterministic, seeded stream
//! of block-granular disk operations whose volume reacts to the disk
//! throughput the workload actually achieves (closed-loop workloads like
//! Bonnie++ slow down when the migration competes for the disk; open-loop
//! ones like the video server do not). The migration engines — simulated
//! and live — consume the same streams, and [`locality`] verifies the
//! rewrite ratios against the paper's measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diabolical;
mod kernel;
pub mod locality;
mod op;
mod pattern;
pub mod probe;
mod trace;
mod video;
mod web;
mod workload;

pub use diabolical::{BonniePhase, DiabolicalWorkload};
pub use kernel::KernelBuildWorkload;
pub use op::{OpKind, OpTrace, TimedOp};
pub use pattern::WritePattern;
pub use trace::{record, TraceWorkload};
pub use video::VideoStreamWorkload;
pub use web::WebServerWorkload;
pub use workload::{Workload, WorkloadKind};
