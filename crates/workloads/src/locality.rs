//! Write-locality analysis (§IV-A-2).
//!
//! The paper motivates bitmap-based synchronization over Bradford et al.'s
//! delta forwarding by measuring how often workloads rewrite blocks they
//! already wrote: every rewrite is a redundant delta on the wire, but a
//! free bit re-set in a bitmap. These analyzers compute that measurement
//! over an operation stream.

use std::collections::HashSet;

use crate::OpKind;

/// Fraction of write operations whose target block was written earlier in
/// the stream — the paper's rewrite-ratio metric. Returns 0 for a stream
/// with no writes.
pub fn rewrite_ratio(ops: impl Iterator<Item = OpKind>) -> f64 {
    let mut seen = HashSet::new();
    let mut writes = 0usize;
    let mut rewrites = 0usize;
    for op in ops {
        if let OpKind::Write { block } = op {
            writes += 1;
            if !seen.insert(block) {
                rewrites += 1;
            }
        }
    }
    if writes == 0 {
        0.0
    } else {
        rewrites as f64 / writes as f64
    }
}

/// Full locality report over an operation stream.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct LocalityReport {
    /// Total write operations.
    pub writes: usize,
    /// Distinct blocks written.
    pub unique_blocks: usize,
    /// Writes that re-targeted an already-written block.
    pub rewrites: usize,
    /// `rewrites / writes`.
    pub rewrite_ratio: f64,
    /// Bytes a delta-forwarding scheme would ship for these writes
    /// (every write = one delta), at the given block size.
    pub delta_bytes: u64,
    /// Bytes a bitmap scheme ships (each unique block once).
    pub bitmap_scheme_bytes: u64,
}

/// Analyze a stream of operations at `block_size` bytes per block.
pub fn analyze(ops: impl Iterator<Item = OpKind>, block_size: u64) -> LocalityReport {
    let mut seen = HashSet::new();
    let mut writes = 0usize;
    let mut rewrites = 0usize;
    for op in ops {
        if let OpKind::Write { block } = op {
            writes += 1;
            if !seen.insert(block) {
                rewrites += 1;
            }
        }
    }
    let unique = seen.len();
    LocalityReport {
        writes,
        unique_blocks: unique,
        rewrites,
        rewrite_ratio: if writes == 0 {
            0.0
        } else {
            rewrites as f64 / writes as f64
        },
        delta_bytes: writes as u64 * block_size,
        bitmap_scheme_bytes: unique as u64 * block_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(b: u64) -> OpKind {
        OpKind::Write { block: b }
    }

    fn r(b: u64) -> OpKind {
        OpKind::Read { block: b }
    }

    #[test]
    fn ratio_counts_only_writes() {
        let ops = vec![w(1), r(1), w(2), w(1), r(3), w(2)];
        // writes: 1,2,1,2 -> rewrites: the second 1 and the second 2.
        assert!((rewrite_ratio(ops.into_iter()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_readonly_streams() {
        assert_eq!(rewrite_ratio(std::iter::empty()), 0.0);
        assert_eq!(rewrite_ratio(vec![r(1), r(2)].into_iter()), 0.0);
    }

    #[test]
    fn analyze_quantifies_delta_redundancy() {
        let ops = vec![w(1), w(1), w(1), w(2)];
        let rep = analyze(ops.into_iter(), 4096);
        assert_eq!(rep.writes, 4);
        assert_eq!(rep.unique_blocks, 2);
        assert_eq!(rep.rewrites, 2);
        assert_eq!(rep.delta_bytes, 4 * 4096);
        assert_eq!(rep.bitmap_scheme_bytes, 2 * 4096);
        // The bitmap scheme ships strictly less when locality exists.
        assert!(rep.bitmap_scheme_bytes < rep.delta_bytes);
    }
}
