//! Block-granular operations and recordable traces.

use serde::{Deserialize, Serialize};

use des::SimDuration;

/// One disk operation at block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Read one block.
    Read {
        /// Block index.
        block: u64,
    },
    /// Write one block.
    Write {
        /// Block index.
        block: u64,
    },
}

impl OpKind {
    /// The block the operation touches.
    pub fn block(self) -> u64 {
        match self {
            Self::Read { block } | Self::Write { block } => block,
        }
    }

    /// `true` for writes.
    pub fn is_write(self) -> bool {
        matches!(self, Self::Write { .. })
    }
}

/// An operation with a time offset from the start of its generation
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedOp {
    /// Offset within the interval the op was generated for.
    pub offset: SimDurationSerde,
    /// The operation.
    pub kind: OpKind,
}

impl TimedOp {
    /// Construct from an offset and operation.
    pub fn new(offset: SimDuration, kind: OpKind) -> Self {
        Self {
            offset: SimDurationSerde(offset.as_nanos()),
            kind,
        }
    }

    /// The offset as a [`SimDuration`].
    pub fn offset(&self) -> SimDuration {
        SimDuration::from_nanos(self.offset.0)
    }
}

/// Serde-friendly wrapper for [`SimDuration`] (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimDurationSerde(pub u64);

/// A recorded operation trace, serializable for replay and offline
/// analysis (e.g. the rewrite-ratio measurements of §IV-A-2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpTrace {
    /// Operations in generation order.
    pub ops: Vec<TimedOp>,
}

impl OpTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an operation.
    pub fn push(&mut self, op: TimedOp) {
        self.ops.push(op);
    }

    /// Append every op of an interval batch.
    pub fn extend(&mut self, ops: &[TimedOp]) {
        self.ops.extend_from_slice(ops);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count of write operations.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.kind.is_write()).count()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opkind_accessors() {
        let r = OpKind::Read { block: 5 };
        let w = OpKind::Write { block: 9 };
        assert_eq!(r.block(), 5);
        assert_eq!(w.block(), 9);
        assert!(!r.is_write());
        assert!(w.is_write());
    }

    #[test]
    fn timed_op_offset_roundtrip() {
        let op = TimedOp::new(SimDuration::from_millis(250), OpKind::Read { block: 1 });
        assert_eq!(op.offset(), SimDuration::from_millis(250));
    }

    #[test]
    fn trace_json_roundtrip() {
        let mut t = OpTrace::new();
        t.push(TimedOp::new(SimDuration::ZERO, OpKind::Write { block: 7 }));
        t.push(TimedOp::new(
            SimDuration::from_micros(3),
            OpKind::Read { block: 8 },
        ));
        assert_eq!(t.len(), 2);
        assert_eq!(t.write_count(), 1);
        let back = OpTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.ops, t.ops);
    }
}
