//! Write-placement pattern with a tunable rewrite ratio.
//!
//! §IV-A-2 measures how often workloads *rewrite* blocks they already
//! wrote: 11 % for a kernel build, 25.2 % for SPECweb Banking, 35.6 % for
//! Bonnie++. That locality is exactly why a bitmap beats a delta queue.
//! [`WritePattern`] produces block choices with a calibrated rewrite
//! probability: with probability `rewrite_prob` the next write targets a
//! block from the recent-write history, otherwise a fresh block chosen by
//! the placement policy.

use des::dist::{HotCold, SequentialCursor};
use des::SimRng;

/// Policy for choosing fresh (non-rewrite) write targets.
#[derive(Debug, Clone)]
pub enum Placement {
    /// Advance sequentially through a region, wrapping (file-append and
    /// Bonnie++ sequential-output behaviour).
    Sequential(SequentialCursor),
    /// Hot/cold skewed placement within a region (database/log behaviour).
    HotCold(HotCold),
    /// Uniform over a region `[start, start + len)`.
    Uniform {
        /// Region start block.
        start: u64,
        /// Region length in blocks.
        len: u64,
    },
}

impl Placement {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        match self {
            Placement::Sequential(c) => c.next_value(),
            Placement::HotCold(hc) => hc.sample(rng),
            Placement::Uniform { start, len } => *start + rng.below(*len),
        }
    }
}

/// Write-target generator with a calibrated rewrite ratio.
#[derive(Debug, Clone)]
pub struct WritePattern {
    placement: Placement,
    rewrite_prob: f64,
    history: Vec<u64>,
    history_cap: usize,
    cursor: usize,
}

impl WritePattern {
    /// Create a pattern. `rewrite_prob` is the probability that a write
    /// re-targets one of the last `history_cap` distinct choices.
    ///
    /// # Panics
    /// Panics when `rewrite_prob` is outside `[0, 1]` or `history_cap` is
    /// zero.
    pub fn new(placement: Placement, rewrite_prob: f64, history_cap: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&rewrite_prob),
            "rewrite probability must be in [0,1]"
        );
        assert!(history_cap > 0, "history capacity must be non-zero");
        Self {
            placement,
            rewrite_prob,
            history: Vec::with_capacity(history_cap.min(4096)),
            history_cap,
            cursor: 0,
        }
    }

    /// Next write target block.
    pub fn next_block(&mut self, rng: &mut SimRng) -> u64 {
        if !self.history.is_empty() && rng.chance(self.rewrite_prob) {
            *rng.choose(&self.history)
        } else {
            let b = self.placement.next(rng);
            if self.history.len() < self.history_cap {
                self.history.push(b);
            } else {
                // Ring-replace: keeps the history to *recent* writes, which
                // is what storage-access locality looks like.
                self.history[self.cursor] = b;
                self.cursor = (self.cursor + 1) % self.history_cap;
            }
            b
        }
    }

    /// The configured rewrite probability.
    pub fn rewrite_prob(&self) -> f64 {
        self.rewrite_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Measured rewrite ratio of a generated stream: the paper's metric —
    /// fraction of writes whose block was written before.
    fn measured_ratio(pattern: &mut WritePattern, n: usize, rng: &mut SimRng) -> f64 {
        let mut seen = HashSet::new();
        let mut rewrites = 0usize;
        for _ in 0..n {
            let b = pattern.next_block(rng);
            if !seen.insert(b) {
                rewrites += 1;
            }
        }
        rewrites as f64 / n as f64
    }

    #[test]
    fn zero_rewrite_prob_on_fresh_sequential_is_unique() {
        let mut p = WritePattern::new(
            Placement::Sequential(SequentialCursor::new(0, 1_000_000)),
            0.0,
            1024,
        );
        let mut rng = SimRng::new(1);
        let r = measured_ratio(&mut p, 10_000, &mut rng);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn kernel_build_ratio_around_11_percent() {
        let mut p = WritePattern::new(
            Placement::Sequential(SequentialCursor::new(0, 10_000_000)),
            0.11,
            8192,
        );
        let mut rng = SimRng::new(2);
        let r = measured_ratio(&mut p, 50_000, &mut rng);
        assert!((0.09..0.14).contains(&r), "ratio {r}");
    }

    #[test]
    fn specweb_ratio_around_25_percent() {
        // The web workload's configuration: uniform fresh placement over a
        // 4 GiB region with explicit 0.23 rewrite probability.
        let mut p = WritePattern::new(
            Placement::Uniform {
                start: 0,
                len: 1_048_576,
            },
            0.23,
            8192,
        );
        let mut rng = SimRng::new(3);
        let r = measured_ratio(&mut p, 50_000, &mut rng);
        assert!((0.20..0.30).contains(&r), "ratio {r}");
    }

    #[test]
    fn hotcold_placement_inflates_measured_ratio() {
        // Skewed fresh placement collides with earlier writes, so the
        // measured rewrite ratio exceeds the explicit probability — the
        // reason the web workload uses uniform fresh placement.
        let mut p = WritePattern::new(
            Placement::HotCold(HotCold::new(500_000, 0, 16_384, 0.6)),
            0.20,
            8192,
        );
        let mut rng = SimRng::new(3);
        let r = measured_ratio(&mut p, 50_000, &mut rng);
        assert!(r > 0.30, "ratio {r}");
    }

    #[test]
    fn uniform_placement_stays_in_region() {
        let mut p = WritePattern::new(
            Placement::Uniform {
                start: 100,
                len: 50,
            },
            0.3,
            16,
        );
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let b = p.next_block(&mut rng);
            assert!((100..150).contains(&b));
        }
    }

    #[test]
    fn history_ring_replacement() {
        let mut p = WritePattern::new(
            Placement::Sequential(SequentialCursor::new(0, 1_000_000)),
            0.5,
            4,
        );
        let mut rng = SimRng::new(5);
        // Generate enough to wrap the 4-entry history several times;
        // rewrites must target recent blocks only.
        let mut recent = Vec::new();
        for _ in 0..200 {
            let b = p.next_block(&mut rng);
            if !recent.contains(&b) {
                recent.push(b);
            }
        }
        // Fresh blocks advance; the stream cannot be stuck on early blocks.
        assert!(recent.iter().max().unwrap() > &20);
    }

    #[test]
    #[should_panic(expected = "rewrite probability")]
    fn bad_prob_panics() {
        WritePattern::new(Placement::Uniform { start: 0, len: 1 }, 1.5, 8);
    }
}
