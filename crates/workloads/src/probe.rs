//! Client-side throughput probe.
//!
//! The paper's client machine measures service throughput over time; the
//! resulting series are Figures 5 and 6, and "disruption time" (§III-A) is
//! the total time the client observes degraded responsiveness. The probe
//! collects `(time, bytes/s)` samples and derives both.

use des::{SimDuration, SimTime};
use serde::Serialize;

/// One throughput sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Sample {
    /// Sample time (seconds since experiment start).
    pub t_secs: f64,
    /// Client-observed throughput, bytes/second.
    pub throughput: f64,
}

/// Accumulates throughput samples and computes disruption metrics.
#[derive(Debug, Clone, Default)]
pub struct ThroughputProbe {
    samples: Vec<Sample>,
}

impl ThroughputProbe {
    /// Empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample at virtual time `t`.
    pub fn record(&mut self, t: SimTime, throughput: f64) {
        self.samples.push(Sample {
            t_secs: t.as_secs_f64(),
            throughput,
        });
    }

    /// All samples, in recording order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Mean throughput over all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.throughput).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean throughput over samples within `[from, to)` seconds.
    pub fn mean_between(&self, from: f64, to: f64) -> f64 {
        let window: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.t_secs >= from && s.t_secs < to)
            .map(|s| s.throughput)
            .collect();
        if window.is_empty() {
            0.0
        } else {
            window.iter().sum::<f64>() / window.len() as f64
        }
    }

    /// Total time the client observed throughput below
    /// `(1 - tolerance) * baseline`, assuming evenly spaced samples —
    /// the paper's *disruption time*.
    pub fn disruption_time(&self, baseline: f64, tolerance: f64) -> SimDuration {
        if self.samples.len() < 2 {
            return SimDuration::ZERO;
        }
        let threshold = baseline * (1.0 - tolerance);
        let dt = (self.samples.last().expect("non-empty").t_secs - self.samples[0].t_secs)
            / (self.samples.len() - 1) as f64;
        let degraded = self
            .samples
            .iter()
            .filter(|s| s.throughput < threshold)
            .count();
        SimDuration::from_secs_f64(degraded as f64 * dt)
    }

    /// Downsample into `bucket` second averages, as the paper's figures
    /// plot (Figure 5 uses ~10 s buckets).
    pub fn bucketed(&self, bucket: f64) -> Vec<Sample> {
        assert!(bucket > 0.0, "bucket width must be positive");
        let mut out: Vec<Sample> = Vec::new();
        let mut acc = 0.0;
        let mut n = 0usize;
        let mut edge = bucket;
        for s in &self.samples {
            while s.t_secs >= edge {
                if n > 0 {
                    out.push(Sample {
                        t_secs: edge - bucket / 2.0,
                        throughput: acc / n as f64,
                    });
                }
                acc = 0.0;
                n = 0;
                edge += bucket;
            }
            acc += s.throughput;
            n += 1;
        }
        if n > 0 {
            out.push(Sample {
                t_secs: edge - bucket / 2.0,
                throughput: acc / n as f64,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_with(vals: &[f64]) -> ThroughputProbe {
        let mut p = ThroughputProbe::new();
        for (i, &v) in vals.iter().enumerate() {
            p.record(SimTime::from_nanos(i as u64 * 1_000_000_000), v);
        }
        p
    }

    #[test]
    fn mean_and_windowed_mean() {
        let p = probe_with(&[10.0, 20.0, 30.0, 40.0]);
        assert!((p.mean() - 25.0).abs() < 1e-9);
        assert!((p.mean_between(1.0, 3.0) - 25.0).abs() < 1e-9);
        assert_eq!(p.mean_between(100.0, 200.0), 0.0);
    }

    #[test]
    fn disruption_time_counts_degraded_samples() {
        // Baseline 100; tolerance 10% => threshold 90.
        let p = probe_with(&[100.0, 95.0, 50.0, 60.0, 100.0, 100.0]);
        let d = p.disruption_time(100.0, 0.10);
        assert!((d.as_secs_f64() - 2.0).abs() < 1e-9, "{d}");
        // Empty probe: zero.
        assert_eq!(
            ThroughputProbe::new().disruption_time(100.0, 0.1),
            SimDuration::ZERO
        );
    }

    #[test]
    fn bucketed_averages() {
        let p = probe_with(&[10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        let b = p.bucketed(2.0);
        assert_eq!(b.len(), 3);
        assert!((b[0].throughput - 15.0).abs() < 1e-9);
        assert!((b[1].throughput - 35.0).abs() < 1e-9);
        assert!((b[2].throughput - 55.0).abs() < 1e-9);
    }

    #[test]
    fn bucketed_skips_empty_buckets() {
        let mut p = ThroughputProbe::new();
        p.record(SimTime::from_nanos(0), 1.0);
        p.record(SimTime::from_nanos(10_000_000_000), 2.0);
        let b = p.bucketed(1.0);
        assert_eq!(b.len(), 2);
    }
}
