//! Trace recording and replay.
//!
//! Any workload's op stream can be recorded into an [`OpTrace`]
//! (serializable, for offline locality analysis or archival) and replayed
//! later through [`TraceWorkload`], which implements [`Workload`] so a
//! recorded stream can drive a migration exactly like a live generator.
//! Replay is also the mechanism behind the scripted post-copy race tests:
//! a hand-written trace pins guest reads/writes to exact virtual times.

use des::{SimDuration, SimRng};
use vmstate::WssModel;

use crate::{OpTrace, TimedOp, Workload};

/// Record `duration` of a workload's op stream (driven at its full
/// demand) into a trace with absolute offsets from the recording start.
pub fn record(
    workload: &mut dyn Workload,
    duration: SimDuration,
    step: SimDuration,
    rng: &mut SimRng,
) -> OpTrace {
    assert!(step > SimDuration::ZERO, "step must be positive");
    let mut trace = OpTrace::new();
    let mut elapsed = SimDuration::ZERO;
    while elapsed < duration {
        let dt = step.min(duration - elapsed);
        let demand = workload.disk_demand();
        for op in workload.ops_for(dt, demand, rng) {
            trace.push(TimedOp::new(elapsed + op.offset(), op.kind));
        }
        elapsed += dt;
    }
    trace
}

/// Replays a recorded (or hand-written) trace as a [`Workload`].
///
/// Ops are emitted when the replay clock passes their absolute offset;
/// offsets within each emitted batch are re-based to the interval start.
/// The stream is open-loop (a trace has no feedback), and after the trace
/// is exhausted the workload optionally loops.
#[derive(Debug)]
pub struct TraceWorkload {
    trace: OpTrace,
    cursor: usize,
    clock: SimDuration,
    trace_len: SimDuration,
    looping: bool,
    disk_demand: f64,
    client_baseline: f64,
}

impl TraceWorkload {
    /// Create a one-shot replay of `trace`.
    ///
    /// `disk_demand` is the nominal disk load the trace represents
    /// (bytes/second) — used by the contention model; derive it from the
    /// recording with [`TraceWorkload::demand_of`] when unsure.
    pub fn new(trace: OpTrace, disk_demand: f64) -> Self {
        let trace_len = trace
            .ops
            .last()
            .map(|op| op.offset())
            .unwrap_or(SimDuration::ZERO);
        Self {
            trace,
            cursor: 0,
            clock: SimDuration::ZERO,
            trace_len,
            looping: false,
            disk_demand,
            client_baseline: disk_demand,
        }
    }

    /// Replay the trace endlessly (wrapping offsets).
    pub fn looped(mut self) -> Self {
        self.looping = true;
        self
    }

    /// Mean disk demand of a trace at `block_size` bytes per op.
    pub fn demand_of(trace: &OpTrace, block_size: u64) -> f64 {
        let len = trace
            .ops
            .last()
            .map(|op| op.offset().as_secs_f64())
            .unwrap_or(0.0);
        if len <= 0.0 {
            return 0.0;
        }
        trace.ops.len() as f64 * block_size as f64 / len
    }

    /// Ops remaining in a one-shot replay.
    pub fn remaining(&self) -> usize {
        self.trace.ops.len() - self.cursor
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        "trace-replay"
    }

    fn disk_demand(&self) -> f64 {
        self.disk_demand
    }

    fn closed_loop(&self) -> bool {
        false
    }

    fn ops_for(&mut self, dt: SimDuration, _achieved: f64, _rng: &mut SimRng) -> Vec<TimedOp> {
        let mut out = Vec::new();
        let start = self.clock;
        let end = self.clock + dt;
        while self.cursor < self.trace.ops.len() {
            let op = self.trace.ops[self.cursor];
            if op.offset() >= end {
                break;
            }
            out.push(TimedOp::new(op.offset() - start, op.kind));
            self.cursor += 1;
        }
        self.clock = end;
        if self.looping && self.cursor >= self.trace.ops.len() && !self.trace.is_empty() {
            // Wrap: restart the trace at the current clock.
            self.cursor = 0;
            self.clock = SimDuration::ZERO;
            // Consume the residual of this interval against the restarted
            // trace only when it would make progress (avoids infinite
            // recursion on zero-length traces).
            if end > self.trace_len && self.trace_len > SimDuration::ZERO {
                // skip: alignment resumes on the next call
            }
        }
        out
    }

    fn client_throughput(&self, achieved: f64) -> f64 {
        if self.disk_demand <= 0.0 {
            0.0
        } else {
            self.client_baseline * (achieved / self.disk_demand).min(1.0)
        }
    }

    fn wss_model(&self, num_pages: usize) -> WssModel {
        WssModel::idle(num_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, WorkloadKind};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn record_then_replay_preserves_ops() {
        let mut w = WorkloadKind::Web.build(1 << 22);
        let mut rng = SimRng::new(5);
        let trace = record(w.as_mut(), SimDuration::from_secs(30), ms(500), &mut rng);
        assert!(!trace.is_empty());
        assert!(trace.write_count() > 0);

        let total = trace.len();
        let mut replay = TraceWorkload::new(trace, 1e6);
        let mut rng2 = SimRng::new(0);
        let mut replayed = 0usize;
        for _ in 0..40 {
            replayed += replay
                .ops_for(SimDuration::from_secs(1), 1e6, &mut rng2)
                .len();
        }
        assert_eq!(
            replayed, total,
            "every recorded op must replay exactly once"
        );
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn replay_respects_timing() {
        let mut trace = OpTrace::new();
        trace.push(TimedOp::new(ms(100), OpKind::Write { block: 1 }));
        trace.push(TimedOp::new(ms(1_500), OpKind::Write { block: 2 }));
        trace.push(TimedOp::new(ms(2_100), OpKind::Read { block: 1 }));
        let mut w = TraceWorkload::new(trace, 1000.0);
        let mut rng = SimRng::new(0);

        let s1 = w.ops_for(SimDuration::from_secs(1), 1000.0, &mut rng);
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].kind, OpKind::Write { block: 1 });
        assert_eq!(s1[0].offset(), ms(100));

        let s2 = w.ops_for(SimDuration::from_secs(1), 1000.0, &mut rng);
        assert_eq!(s2.len(), 1);
        assert_eq!(s2[0].offset(), ms(500)); // re-based to interval start

        let s3 = w.ops_for(SimDuration::from_secs(1), 1000.0, &mut rng);
        assert_eq!(s3.len(), 1);
        assert!(!s3[0].kind.is_write());
    }

    #[test]
    fn looped_replay_wraps() {
        let mut trace = OpTrace::new();
        trace.push(TimedOp::new(ms(10), OpKind::Write { block: 7 }));
        let mut w = TraceWorkload::new(trace, 1000.0).looped();
        let mut rng = SimRng::new(0);
        let mut seen = 0;
        for _ in 0..5 {
            seen += w.ops_for(ms(100), 1000.0, &mut rng).len();
        }
        assert!(seen >= 4, "looped trace must keep emitting (saw {seen})");
    }

    #[test]
    fn demand_estimation() {
        let mut trace = OpTrace::new();
        for i in 0..100 {
            trace.push(TimedOp::new(ms(i * 10), OpKind::Write { block: i }));
        }
        // 100 ops over ~1s at 4096 B/op ≈ 410 KB/s.
        let d = TraceWorkload::demand_of(&trace, 4096);
        assert!((350_000.0..500_000.0).contains(&d), "demand {d}");
        assert_eq!(TraceWorkload::demand_of(&OpTrace::new(), 4096), 0.0);
    }

    #[test]
    fn trace_json_roundtrip_through_replay() {
        let mut w = WorkloadKind::Video.build(1 << 22);
        let mut rng = SimRng::new(9);
        let trace = record(w.as_mut(), SimDuration::from_secs(5), ms(500), &mut rng);
        let json = trace.to_json();
        let back = OpTrace::from_json(&json).expect("roundtrip");
        assert_eq!(back.ops, trace.ops);
    }
}
