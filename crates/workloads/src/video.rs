//! Low-latency video streaming workload (Samba file server).
//!
//! §VI-C-2: the guest shares a 210 MB video played by a client at under
//! 500 kbps while the VM migrates. "The write rate is very low in video
//! server, so only two iterations are performed and only 610 blocks have
//! been retransferred in the second iteration" — i.e. ~0.8 unique dirty
//! blocks/s (connection logs, metadata), with 5 blocks left for post-copy.
//! The client must observe fluent playback throughout; disruption time is
//! the metric that matters here.

use des::dist::SequentialCursor;
use des::{SimDuration, SimRng};
use vmstate::WssModel;

use crate::pattern::Placement;
use crate::web::take_events;
use crate::{OpKind, TimedOp, Workload, WritePattern};

/// Samba-like streaming server. See module docs for calibration.
#[derive(Debug)]
pub struct VideoStreamWorkload {
    stream: SequentialCursor,
    log_writes: WritePattern,
    write_rate: f64,
    read_rate: f64,
    write_carry: f64,
    read_carry: f64,
    disk_demand: f64,
    baseline_client: f64,
}

impl VideoStreamWorkload {
    /// Paper-calibrated instance for a disk of `num_blocks` 4 KiB blocks.
    /// The paper's video file is 210 MB; on smaller test disks it scales
    /// down to a quarter of the disk.
    ///
    /// # Panics
    /// Panics when the disk is smaller than ~32 MiB (the server log
    /// occupies the fixed block range 4096..8192).
    pub fn paper_default(num_blocks: u64) -> Self {
        assert!(
            num_blocks >= 8_192,
            "video workload needs at least ~32 MiB of disk"
        );
        // The 210 MB video = 53 760 blocks, placed at 20% of the disk; the
        // server log lives near the front.
        let video_start = num_blocks / 5;
        let video_blocks = 53_760.min(num_blocks / 4);
        let stream_rate = 500_000.0 / 8.0; // 500 kbps in bytes/s
        Self {
            stream: SequentialCursor::new(video_start, video_blocks),
            log_writes: WritePattern::new(
                Placement::Sequential(SequentialCursor::new(4096, 4096)),
                0.05,
                256,
            ),
            write_rate: 0.8,
            read_rate: stream_rate / 4096.0,
            write_carry: 0.0,
            read_carry: 0.0,
            disk_demand: stream_rate + 0.8 * 4096.0,
            baseline_client: stream_rate,
        }
    }
}

impl Workload for VideoStreamWorkload {
    fn name(&self) -> &'static str {
        "video"
    }

    fn disk_demand(&self) -> f64 {
        self.disk_demand
    }

    fn closed_loop(&self) -> bool {
        false
    }

    fn ops_for(&mut self, dt: SimDuration, achieved: f64, rng: &mut SimRng) -> Vec<TimedOp> {
        if achieved <= 0.0 && self.disk_demand > 0.0 {
            return Vec::new();
        }
        let mut ops = Vec::new();
        // Streaming reads march sequentially through the video file.
        let reads = take_events(&mut self.read_carry, self.read_rate, dt);
        for i in 0..reads {
            // Evenly paced within the interval: latency-sensitive stream.
            let at = dt * i / reads.max(1);
            ops.push(TimedOp::new(
                at,
                OpKind::Read {
                    block: self.stream.next_value(),
                },
            ));
        }
        // Sparse log appends.
        let writes = take_events(&mut self.write_carry, self.write_rate, dt);
        for _ in 0..writes {
            let at = SimDuration::from_nanos(rng.below(dt.as_nanos().max(1)));
            ops.push(TimedOp::new(
                at,
                OpKind::Write {
                    block: self.log_writes.next_block(rng),
                },
            ));
        }
        ops
    }

    fn client_throughput(&self, achieved: f64) -> f64 {
        self.baseline_client * (achieved / self.disk_demand).min(1.0)
    }

    fn wss_model(&self, num_pages: usize) -> WssModel {
        // A streaming server barely dirties memory: socket buffers and a
        // small cache-management hot set.
        WssModel::new(num_pages, 0.005, 0.9, 1200.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCKS_40GB: u64 = 10 * 1024 * 1024;

    #[test]
    fn write_rate_is_very_low() {
        let mut w = VideoStreamWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(1);
        let mut writes = 0usize;
        let mut unique = std::collections::HashSet::new();
        for _ in 0..796 {
            for op in w.ops_for(SimDuration::from_secs(1), w.disk_demand(), &mut rng) {
                if let OpKind::Write { block } = op.kind {
                    writes += 1;
                    unique.insert(block);
                }
            }
        }
        // Paper: 610 blocks retransferred in iteration 2 of ~796 s.
        assert!(
            (300..1_200).contains(&unique.len()),
            "unique dirty {}",
            unique.len()
        );
        assert!(writes >= unique.len());
    }

    #[test]
    fn reads_are_sequential_through_the_video() {
        let mut w = VideoStreamWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(2);
        let ops = w.ops_for(SimDuration::from_secs(10), w.disk_demand(), &mut rng);
        let reads: Vec<u64> = ops
            .iter()
            .filter(|o| !o.kind.is_write())
            .map(|o| o.kind.block())
            .collect();
        // ~15 blocks/s of stream reads.
        assert!((100..200).contains(&reads.len()), "{} reads", reads.len());
        assert!(reads.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn stream_rate_matches_500kbps() {
        let w = VideoStreamWorkload::paper_default(BLOCKS_40GB);
        // 500 kbps = 62 500 B/s on the client side.
        assert!((w.client_throughput(w.disk_demand()) - 62_500.0).abs() < 1.0);
        // Demand is tiny compared to the disk: the migration barely
        // contends with it ("the server works well even when the bandwidth
        // used by the migration process is not limited at all").
        assert!(w.disk_demand() < 100_000.0);
    }

    #[test]
    fn paced_reads_within_interval() {
        let mut w = VideoStreamWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(3);
        let dt = SimDuration::from_secs(1);
        for op in w.ops_for(dt, w.disk_demand(), &mut rng) {
            assert!(op.offset() < dt);
        }
    }
}
