//! Dynamic web server workload (SPECweb2005 Banking-like).
//!
//! §VI-C-1: 100 client connections drive a banking application that
//! "generates a lot of writes in bursts". The paper's run shows ~6680
//! blocks retransferred across 3 pre-copy iterations of a ~796 s
//! migration, 62 blocks left for post-copy, one pulled block, and a
//! measured 25.2 % rewrite ratio. Calibration:
//!
//! * writes arrive in bursts (a few per second) at ~11 writes/s average —
//!   that average times the ~790 s first iteration gives the observed
//!   few-thousand-block dirty set;
//! * a rewrite probability of ~0.23 plus placement collisions yields the
//!   ~25 % rewrite ratio;
//! * reads are page-cache-friendly, so disk read demand is modest and
//!   client throughput is essentially network-bound (Figure 5 shows no
//!   visible dip during migration).

use des::{SimDuration, SimRng};
use vmstate::WssModel;

use crate::pattern::Placement;
use crate::{OpKind, TimedOp, Workload, WritePattern};

/// SPECweb-Banking-like workload. See module docs for calibration.
#[derive(Debug)]
pub struct WebServerWorkload {
    writes: WritePattern,
    data_region: (u64, u64),
    burst_per_sec: f64,
    writes_per_burst: (u64, u64),
    read_rate: f64,
    burst_carry: f64,
    read_carry: f64,
    disk_demand: f64,
    baseline_client: f64,
}

impl WebServerWorkload {
    /// Paper-calibrated instance for a disk of `num_blocks` 4 KiB blocks.
    /// On the paper's 40 GB disk the data region is 4 GiB; on smaller
    /// test disks it scales down proportionally.
    ///
    /// # Panics
    /// Panics when the disk is smaller than ~32 MiB.
    pub fn paper_default(num_blocks: u64) -> Self {
        assert!(
            num_blocks >= 8_192,
            "web workload needs at least ~32 MiB of disk"
        );
        // Application data spread over a region in the middle of the
        // disk; fresh writes scatter uniformly (user records), rewrites
        // re-hit recent blocks.
        let data_start = num_blocks / 4;
        let data_len = 1_048_576.min(num_blocks / 2); // 4 GiB at paper scale
        Self {
            writes: WritePattern::new(
                Placement::Uniform {
                    start: data_start,
                    len: data_len,
                },
                0.23,
                8192,
            ),
            data_region: (data_start, data_len),
            burst_per_sec: 1.1,
            writes_per_burst: (5, 16),
            read_rate: 500.0, // 4 KiB blocks/s => ~2 MB/s of disk reads
            burst_carry: 0.0,
            read_carry: 0.0,
            disk_demand: 2.1 * 1024.0 * 1024.0,
            baseline_client: 70.0 * 1024.0 * 1024.0,
        }
    }
}

/// Deterministic fractional-rate counter: returns the integer number of
/// events for `rate * dt` while carrying the remainder.
pub(crate) fn take_events(carry: &mut f64, rate: f64, dt: SimDuration) -> u64 {
    let x = *carry + rate * dt.as_secs_f64();
    let n = x.floor();
    *carry = x - n;
    n as u64
}

impl Workload for WebServerWorkload {
    fn name(&self) -> &'static str {
        "web"
    }

    fn disk_demand(&self) -> f64 {
        self.disk_demand
    }

    fn closed_loop(&self) -> bool {
        false
    }

    fn ops_for(&mut self, dt: SimDuration, achieved: f64, rng: &mut SimRng) -> Vec<TimedOp> {
        // Open loop: the schedule does not scale with `achieved`, but a
        // fully starved disk (no share at all) stalls the application.
        if achieved <= 0.0 && self.disk_demand > 0.0 {
            return Vec::new();
        }
        let mut ops = Vec::new();
        let bursts = take_events(&mut self.burst_carry, self.burst_per_sec, dt);
        for _ in 0..bursts {
            let at = SimDuration::from_nanos(rng.below(dt.as_nanos().max(1)));
            let n = rng.range(self.writes_per_burst.0, self.writes_per_burst.1);
            for _ in 0..n {
                ops.push(TimedOp::new(
                    at,
                    OpKind::Write {
                        block: self.writes.next_block(rng),
                    },
                ));
            }
        }
        let reads = take_events(&mut self.read_carry, self.read_rate, dt);
        let (rs, rl) = self.data_region;
        for _ in 0..reads {
            let at = SimDuration::from_nanos(rng.below(dt.as_nanos().max(1)));
            ops.push(TimedOp::new(
                at,
                OpKind::Read {
                    block: rs + rng.below(rl),
                },
            ));
        }
        ops
    }

    fn client_throughput(&self, achieved: f64) -> f64 {
        // Network-bound service: full throughput whenever the disk keeps
        // up with its (small) demand, degrading proportionally below that.
        self.baseline_client * (achieved / self.disk_demand).min(1.0)
    }

    fn wss_model(&self, num_pages: usize) -> WssModel {
        // Active banking sessions: a few-MB hot set, ~3000 page writes/s.
        WssModel::new(num_pages, 0.02, 0.85, 3000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCKS_40GB: u64 = 10 * 1024 * 1024;

    #[test]
    fn write_rate_matches_calibration() {
        let mut w = WebServerWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(1);
        let mut writes = 0usize;
        for _ in 0..100 {
            let ops = w.ops_for(SimDuration::from_secs(1), w.disk_demand(), &mut rng);
            writes += ops.iter().filter(|o| o.kind.is_write()).count();
        }
        // ~11 writes/s average (bursts of 5-15 at ~1.1 bursts/s).
        let per_sec = writes as f64 / 100.0;
        assert!((7.0..16.0).contains(&per_sec), "writes/s = {per_sec}");
    }

    #[test]
    fn unique_dirty_blocks_accumulate_like_the_paper() {
        // Over ~790 s the paper dirties ~6.6k unique blocks.
        let mut w = WebServerWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(2);
        let mut dirty = std::collections::HashSet::new();
        for _ in 0..790 {
            for op in w.ops_for(SimDuration::from_secs(1), w.disk_demand(), &mut rng) {
                if let OpKind::Write { block } = op.kind {
                    dirty.insert(block);
                }
            }
        }
        assert!(
            (3_000..12_000).contains(&dirty.len()),
            "unique dirty blocks {}",
            dirty.len()
        );
    }

    #[test]
    fn starved_disk_stalls_the_app() {
        let mut w = WebServerWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(3);
        assert!(w
            .ops_for(SimDuration::from_secs(1), 0.0, &mut rng)
            .is_empty());
        assert_eq!(w.client_throughput(0.0), 0.0);
    }

    #[test]
    fn client_throughput_insensitive_to_disk_when_demand_met() {
        let w = WebServerWorkload::paper_default(BLOCKS_40GB);
        let full = w.client_throughput(w.disk_demand() * 50.0);
        let just_met = w.client_throughput(w.disk_demand());
        assert_eq!(full, just_met);
        assert!(w.client_throughput(w.disk_demand() / 2.0) < full);
    }

    #[test]
    fn ops_stay_on_disk() {
        let mut w = WebServerWorkload::paper_default(BLOCKS_40GB);
        let mut rng = SimRng::new(4);
        for _ in 0..20 {
            for op in w.ops_for(SimDuration::from_secs(1), w.disk_demand(), &mut rng) {
                assert!(op.kind.block() < BLOCKS_40GB);
                assert!(op.offset() < SimDuration::from_secs(1));
            }
        }
    }

    #[test]
    fn take_events_conserves_rate() {
        let mut carry = 0.0;
        let mut total = 0u64;
        for _ in 0..1000 {
            total += take_events(&mut carry, 0.77, SimDuration::from_secs(1));
        }
        assert!((765..775).contains(&total), "total {total}");
    }
}
