//! The workload interface consumed by both migration engines.

use des::{SimDuration, SimRng};
use vmstate::WssModel;

use crate::TimedOp;

/// A guest workload: a deterministic generator of block-granular disk
/// operations plus the demand/throughput model the contention simulation
/// needs.
///
/// Time is divided by the engine into small intervals. For each interval
/// the engine computes the disk throughput the workload *achieves* (its
/// demand, max-min-shared against the migration stream) and asks the
/// workload for the operations it performs in that interval at that
/// achieved rate. Closed-loop workloads (Bonnie++) scale their operation
/// volume with the achieved rate; open-loop ones (video streaming) issue a
/// fixed schedule regardless.
pub trait Workload: Send {
    /// Short identifier used in reports ("web", "video", "diabolical").
    fn name(&self) -> &'static str;

    /// Demand placed on the disk when unimpeded, in bytes/second.
    fn disk_demand(&self) -> f64;

    /// `true` when the workload issues I/O as fast as the disk allows
    /// (its op volume scales with the achieved rate); `false` when it
    /// follows a fixed schedule.
    fn closed_loop(&self) -> bool;

    /// Operations performed during an interval of `dt` in which the
    /// workload achieved `achieved` bytes/second of disk throughput.
    /// Offsets lie in `[0, dt)`.
    fn ops_for(&mut self, dt: SimDuration, achieved: f64, rng: &mut SimRng) -> Vec<TimedOp>;

    /// Client-observed service throughput (bytes/second) when the workload
    /// achieves `achieved` bytes/second at the disk. This is the y-axis of
    /// Figures 5 and 6.
    fn client_throughput(&self, achieved: f64) -> f64;

    /// Memory-dirtying model for a guest with `num_pages` pages.
    fn wss_model(&self, num_pages: usize) -> WssModel;
}

/// The paper's workload menu, as a factory enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// SPECweb2005 Banking-like dynamic web server.
    Web,
    /// Samba video-streaming server.
    Video,
    /// Bonnie++-like diabolical I/O server.
    Diabolical,
    /// Linux kernel build (used for the locality measurement).
    KernelBuild,
    /// No guest I/O at all (baseline / idle control).
    Idle,
}

impl WorkloadKind {
    /// All kinds, for sweeps.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Web,
        WorkloadKind::Video,
        WorkloadKind::Diabolical,
        WorkloadKind::KernelBuild,
        WorkloadKind::Idle,
    ];

    /// The three workloads of Table I.
    pub const TABLE1: [WorkloadKind; 3] = [
        WorkloadKind::Web,
        WorkloadKind::Video,
        WorkloadKind::Diabolical,
    ];

    /// Instantiate the workload for a disk of `num_blocks` 4 KiB blocks.
    pub fn build(self, num_blocks: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Web => Box::new(crate::WebServerWorkload::paper_default(num_blocks)),
            WorkloadKind::Video => Box::new(crate::VideoStreamWorkload::paper_default(num_blocks)),
            WorkloadKind::Diabolical => {
                Box::new(crate::DiabolicalWorkload::paper_default(num_blocks))
            }
            WorkloadKind::KernelBuild => {
                Box::new(crate::KernelBuildWorkload::paper_default(num_blocks))
            }
            WorkloadKind::Idle => Box::new(IdleWorkload),
        }
    }

    /// Report label matching the paper's table headings.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Web => "Dynamic web server",
            WorkloadKind::Video => "Low latency server",
            WorkloadKind::Diabolical => "Diabolical server",
            WorkloadKind::KernelBuild => "Kernel build",
            WorkloadKind::Idle => "Idle",
        }
    }
}

/// A guest that performs no I/O and dirties no memory.
#[derive(Debug, Clone, Copy)]
pub struct IdleWorkload;

impl Workload for IdleWorkload {
    fn name(&self) -> &'static str {
        "idle"
    }

    fn disk_demand(&self) -> f64 {
        0.0
    }

    fn closed_loop(&self) -> bool {
        false
    }

    fn ops_for(&mut self, _dt: SimDuration, _achieved: f64, _rng: &mut SimRng) -> Vec<TimedOp> {
        Vec::new()
    }

    fn client_throughput(&self, _achieved: f64) -> f64 {
        0.0
    }

    fn wss_model(&self, num_pages: usize) -> WssModel {
        WssModel::idle(num_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCKS_40GB: u64 = 10 * 1024 * 1024;

    #[test]
    fn factory_builds_every_kind() {
        for kind in WorkloadKind::ALL {
            let w = kind.build(BLOCKS_40GB);
            assert!(!w.name().is_empty());
            assert!(w.disk_demand() >= 0.0);
        }
    }

    #[test]
    fn idle_workload_is_silent() {
        let mut w = IdleWorkload;
        let mut rng = SimRng::new(0);
        assert!(w
            .ops_for(SimDuration::from_secs(10), 0.0, &mut rng)
            .is_empty());
        assert_eq!(w.client_throughput(1e9), 0.0);
        assert!(!w.closed_loop());
    }

    #[test]
    fn labels_match_paper_headings() {
        assert_eq!(WorkloadKind::Web.label(), "Dynamic web server");
        assert_eq!(WorkloadKind::Video.label(), "Low latency server");
        assert_eq!(WorkloadKind::Diabolical.label(), "Diabolical server");
    }
}
