//! Multi-site migration tour (§VII future work, implemented): a VM hops
//! among several machines, and *storage version maintenance* makes every
//! hop to a previously-visited machine incremental.
//!
//! ```text
//! cargo run --release --example datacenter_tour
//! ```

use block_bitmap_migration::migrate::sim::MultiSiteVm;
use block_bitmap_migration::prelude::*;

fn main() {
    let cfg = MigrationConfig::paper_testbed();
    let mut vm = MultiSiteVm::new(cfg, WorkloadKind::Web, &["rack-a", "rack-b", "rack-c"]);

    println!(
        "{:<28} {:>20} {:>11} {:>11}",
        "hop", "first pass (blocks)", "total (s)", "data (MB)"
    );
    let hop = |vm: &mut MultiSiteVm, to: &str| {
        let from = vm.current_site().to_string();
        let r = vm.migrate_to(to);
        println!(
            "{:<28} {:>20} {:>11.1} {:>11.0}",
            format!("{from} -> {to}"),
            r.disk_iterations[0].units_sent,
            r.total_time_secs,
            r.migrated_mb()
        );
        vm.run_for(SimDuration::from_secs(900));
    };

    hop(&mut vm, "rack-b"); // first visit: full 40 GB
    hop(&mut vm, "rack-c"); // first visit: full 40 GB
    hop(&mut vm, "rack-a"); // revisit: incremental
    hop(&mut vm, "rack-b"); // revisit: incremental
    hop(&mut vm, "rack-c"); // revisit: incremental

    println!(
        "\nOnce every machine holds a (stale) copy, the VM roams the cluster in\n\
         seconds per hop instead of minutes — the paper's §VII vision."
    );
}
