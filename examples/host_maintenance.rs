//! Host maintenance scenario (§V): evacuate a VM, service the host,
//! migrate the VM back with Incremental Migration.
//!
//! The primary migration must move the whole 40 GB disk; the migration
//! back only moves the blocks dirtied during the maintenance window —
//! the paper's Table II shows this collapsing total migration time from
//! ~800 s to ~1 s.
//!
//! ```text
//! cargo run --release --example host_maintenance
//! ```

use block_bitmap_migration::prelude::*;

fn main() {
    // Full paper-scale testbed: 40 GB VBD, 512 MB guest, Gigabit LAN.
    let cfg = MigrationConfig::paper_testbed();
    let maintenance_window = SimDuration::from_secs(1500);

    println!("== Step 1: evacuate host A (primary TPM migration) ==");
    let mut outcome = run_tpm(cfg.clone(), WorkloadKind::Web);
    println!("{}\n", outcome.report.summary());
    assert!(outcome.report.consistent);

    println!(
        "== Step 2: service host A for {:.0} minutes (guest keeps running on host B,\n\
         \x20  every write recorded in the IM bitmap) ==",
        maintenance_window.as_secs_f64() / 60.0
    );
    dwell(&mut outcome, &cfg, maintenance_window);
    println!();

    println!("== Step 3: migrate back to host A with IM ==");
    let primary_mb = outcome.report.migrated_mb();
    let primary_secs = outcome.report.total_time_secs;
    let back = run_im(cfg, outcome);
    println!("{}\n", back.report.summary());
    assert!(back.report.consistent);

    let im_mb = back.report.migrated_mb();
    println!(
        "Primary migration: {primary_secs:>7.1} s, {primary_mb:>8.0} MB\n\
         IM back-migration: {:>7.1} s, {:>8.0} MB  ({:.0}x less data)",
        back.report.total_time_secs,
        im_mb,
        primary_mb / im_mb.max(0.001),
    );
}
