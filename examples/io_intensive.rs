//! Migrating under an I/O storm (§VI-C-3): the diabolical server.
//!
//! Bonnie++ hammers the disk while the migration tries to read all of it;
//! both contend. Rate-limiting the migration gives the benchmark back
//! about half of its lost throughput at the cost of a longer pre-copy —
//! this example reproduces that trade-off across several limits.
//!
//! ```text
//! cargo run --release --example io_intensive
//! ```

use block_bitmap_migration::prelude::*;

fn precopy_secs(r: &MigrationReport) -> f64 {
    r.disk_iterations.iter().map(|i| i.duration_secs).sum()
}

fn workload_mean_during(r: &MigrationReport) -> f64 {
    let end = precopy_secs(r);
    let vals: Vec<f64> = r
        .timeline
        .iter()
        .filter(|s| s.t_secs < end)
        .map(|s| s.throughput)
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

fn main() {
    let base = MigrationConfig::paper_testbed();

    println!("Migrating a 40 GB VBD while Bonnie++ runs in the guest.\n");
    println!(
        "{:<22} {:>14} {:>18} {:>14} {:>10}",
        "migration limit", "pre-copy (s)", "Bonnie++ (KB/s)", "downtime (ms)", "consistent"
    );

    let limits: [(&str, Option<f64>); 4] = [
        ("unlimited", None),
        ("50 MB/s", Some(50.0 * 1024.0 * 1024.0)),
        ("37 MB/s", Some(37.0 * 1024.0 * 1024.0)),
        ("25 MB/s", Some(25.0 * 1024.0 * 1024.0)),
    ];
    for (label, limit) in limits {
        let cfg = MigrationConfig {
            rate_limit: limit,
            ..base.clone()
        };
        let out = run_tpm(cfg, WorkloadKind::Diabolical);
        println!(
            "{:<22} {:>14.0} {:>18.0} {:>14.0} {:>10}",
            label,
            precopy_secs(&out.report),
            workload_mean_during(&out.report) / 1024.0,
            out.report.downtime_ms,
            out.report.consistent
        );
    }

    println!(
        "\nLower limits trade pre-copy time for workload throughput — §VI-C-3's\n\
         observation that \"the disk I/O throughput is the bottleneck of the whole\n\
         system performance\"."
    );
}
