//! Live-mode demonstration: a *real* multi-threaded migration with real
//! bytes, not a simulation.
//!
//! Three threads run concurrently: the guest driver (writing stamped
//! blocks through the intercepting disk), the source protocol (pre-copy
//! iterations, freeze, post-copy push), and the destination protocol
//! (apply, pull, drop). Afterwards every destination block is verified
//! against the guest's own ground-truth write log.
//!
//! ```text
//! cargo run --release --example live_demo
//! cargo run --release --example live_demo -- --trace-out /tmp/journal.jsonl
//! ```
//!
//! With `--trace-out FILE` the run records a telemetry journal: every
//! phase transition, pre-copy iteration, and post-copy block event lands
//! in FILE as JSONL, and a phase summary reconstructed *from the journal*
//! is printed alongside the engine's own numbers.

use block_bitmap_migration::prelude::*;

fn main() {
    let trace_out = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.as_slice() {
            [] => None,
            [flag, path] if flag == "--trace-out" => Some(path.clone()),
            _ => {
                eprintln!("usage: live_demo [--trace-out FILE]");
                std::process::exit(2);
            }
        }
    };
    let cfg = LiveConfig {
        num_blocks: 65_536, // 32 MiB of real bytes at 512 B blocks
        telemetry: if trace_out.is_some() {
            Recorder::enabled()
        } else {
            Recorder::off()
        },
        ..LiveConfig::test_default()
    };
    println!(
        "Live migration: {} blocks x {} B, workload={:?}, {} max iterations\n",
        cfg.num_blocks, cfg.block_size, cfg.workload, cfg.max_iterations
    );

    let out = run_live_migration(&cfg).expect("live migration completes");

    if let Some(path) = &trace_out {
        let records = cfg.telemetry.records();
        std::fs::write(path, block_bitmap_migration::telemetry::to_jsonl(&records))
            .expect("journal written");
        println!("telemetry journal: {} records -> {path}", records.len());
        print!(
            "{}",
            block_bitmap_migration::telemetry::phase_summary(&records)
        );
        println!();
    }

    println!("disk pre-copy iterations (blocks): {:?}", out.iterations);
    println!(
        "memory pre-copy iterations (pages):{:?}",
        out.mem_iterations
    );
    println!(
        "freeze-phase dirty blocks/pages:   {} / {}",
        out.frozen_dirty, out.frozen_mem_dirty
    );
    println!(
        "post-copy: {} pushed, {} pulled, {} dropped, {} reads stalled",
        out.pushed, out.pulled, out.dropped, out.stalled_reads
    );
    println!(
        "downtime: {:?} of {:?} total ({:.1} %)",
        out.downtime,
        out.total,
        100.0 * out.downtime.as_secs_f64() / out.total.as_secs_f64()
    );
    println!(
        "source sent {:.1} MB ({} bytes of bitmap)",
        out.src_ledger.total() as f64 / 1048576.0,
        out.src_ledger
            .get(block_bitmap_migration::simnet::proto::Category::Bitmap),
    );

    let bad = out.inconsistent_blocks();
    let bad_pages = out.inconsistent_pages();
    println!(
        "\nground-truth verification: {} / {} blocks and {} / {} RAM pages correct, {} read violations",
        cfg.num_blocks - bad.len(),
        cfg.num_blocks,
        cfg.mem_pages - bad_pages.len(),
        cfg.mem_pages,
        out.read_violations
    );
    assert!(bad.is_empty(), "inconsistent blocks: {bad:?}");
    assert!(bad_pages.is_empty(), "inconsistent pages: {bad_pages:?}");
    assert_eq!(out.read_violations, 0);
    println!(
        "destination disk AND RAM are byte-identical to the guest's view — migration correct."
    );
}
