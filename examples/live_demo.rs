//! Live-mode demonstration: a *real* multi-threaded migration with real
//! bytes, not a simulation.
//!
//! Three threads run concurrently: the guest driver (writing stamped
//! blocks through the intercepting disk), the source protocol (pre-copy
//! iterations, freeze, post-copy push), and the destination protocol
//! (apply, pull, drop). Afterwards every destination block is verified
//! against the guest's own ground-truth write log.
//!
//! ```text
//! cargo run --release --example live_demo
//! ```

use block_bitmap_migration::prelude::*;

fn main() {
    let cfg = LiveConfig {
        num_blocks: 65_536, // 32 MiB of real bytes at 512 B blocks
        ..LiveConfig::test_default()
    };
    println!(
        "Live migration: {} blocks x {} B, workload={:?}, {} max iterations\n",
        cfg.num_blocks, cfg.block_size, cfg.workload, cfg.max_iterations
    );

    let out = run_live_migration(&cfg).expect("live migration completes");

    println!("disk pre-copy iterations (blocks): {:?}", out.iterations);
    println!("memory pre-copy iterations (pages):{:?}", out.mem_iterations);
    println!("freeze-phase dirty blocks/pages:   {} / {}", out.frozen_dirty, out.frozen_mem_dirty);
    println!(
        "post-copy: {} pushed, {} pulled, {} dropped, {} reads stalled",
        out.pushed, out.pulled, out.dropped, out.stalled_reads
    );
    println!(
        "downtime: {:?} of {:?} total ({:.1} %)",
        out.downtime,
        out.total,
        100.0 * out.downtime.as_secs_f64() / out.total.as_secs_f64()
    );
    println!(
        "source sent {:.1} MB ({} bytes of bitmap)",
        out.src_ledger.total() as f64 / 1048576.0,
        out.src_ledger.get(block_bitmap_migration::simnet::proto::Category::Bitmap),
    );

    let bad = out.inconsistent_blocks();
    let bad_pages = out.inconsistent_pages();
    println!(
        "\nground-truth verification: {} / {} blocks and {} / {} RAM pages correct, {} read violations",
        cfg.num_blocks - bad.len(),
        cfg.num_blocks,
        cfg.mem_pages - bad_pages.len(),
        cfg.mem_pages,
        out.read_violations
    );
    assert!(bad.is_empty(), "inconsistent blocks: {bad:?}");
    assert!(bad_pages.is_empty(), "inconsistent pages: {bad_pages:?}");
    assert_eq!(out.read_violations, 0);
    println!("destination disk AND RAM are byte-identical to the guest's view — migration correct.");
}
