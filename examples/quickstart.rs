//! Quickstart: simulate one whole-system live migration and read the
//! report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use block_bitmap_migration::prelude::*;
use block_bitmap_migration::simnet;

fn main() {
    // A reduced-scale testbed (256 MiB disk, 32 MiB guest) so the example
    // completes instantly; swap in `MigrationConfig::paper_testbed()` for
    // the paper's 40 GB / 512 MB configuration.
    let cfg = MigrationConfig::small();

    println!("Migrating a web-serving guest with TPM…\n");
    let outcome = run_tpm(cfg, WorkloadKind::Web);
    let r = &outcome.report;

    println!("{}", r.summary());
    println!();
    println!("Disk pre-copy iterations:");
    for it in &r.disk_iterations {
        println!(
            "  #{:<2} sent {:>8} blocks ({:>7.1} MB) in {:>7.2}s — {:>6} dirtied meanwhile",
            it.index,
            it.units_sent,
            it.bytes as f64 / 1048576.0,
            it.duration_secs,
            it.dirty_at_end
        );
    }
    println!("Memory pre-copy iterations:");
    for it in &r.mem_iterations {
        println!(
            "  #{:<2} sent {:>8} pages in {:>6.2}s — {:>6} dirtied meanwhile",
            it.index, it.units_sent, it.duration_secs, it.dirty_at_end
        );
    }
    println!();
    println!(
        "Freeze-and-copy downtime: {:.1} ms (the guest was only ever paused this long)",
        r.downtime_ms
    );
    println!(
        "Post-copy: {} blocks outstanding at resume, {} pushed / {} pulled / {} dropped, {:.0} ms",
        r.postcopy.remaining_at_resume,
        r.postcopy.pushed,
        r.postcopy.pulled,
        r.postcopy.dropped,
        r.postcopy.duration_secs * 1000.0
    );
    println!(
        "Data on the wire: {:.1} MB total ({:.1} MB disk, bitmap {} bytes)",
        r.migrated_mb(),
        r.ledger.disk_total() as f64 / 1048576.0,
        r.ledger.get(simnet::proto::Category::Bitmap),
    );
    println!(
        "\nConsistency verified: {} (destination == source modulo post-resume writes)",
        r.consistent
    );
}
