//! Telecommuting scenario (§V): the paper motivates IM with "the
//! migration back and forth between two places to support telecommuting"
//! — carry your whole working environment between the office and home
//! machine every day.
//!
//! After the first (expensive) migration, every commute is an IM that
//! moves only the day's dirtied blocks.
//!
//! ```text
//! cargo run --release --example telecommute
//! ```

use block_bitmap_migration::prelude::*;

fn main() {
    let cfg = MigrationConfig::paper_testbed();
    let workday = SimDuration::from_secs(4 * 3600); // time spent per site

    println!("== Monday morning: first commute, office -> home (full TPM) ==");
    let mut outcome = run_tpm(cfg.clone(), WorkloadKind::KernelBuild);
    assert!(outcome.report.consistent);
    println!(
        "  moved {:>8.0} MB in {:>7.1} s (downtime {:.0} ms)\n",
        outcome.report.migrated_mb(),
        outcome.report.total_time_secs,
        outcome.report.downtime_ms
    );

    let mut location = ["home", "office"].iter().cycle();
    for trip in 1..=4 {
        let here = location.next().expect("cycle is infinite");
        println!(
            "== working at {here} for {:.0} h ==",
            workday.as_secs_f64() / 3600.0
        );
        dwell(&mut outcome, &cfg, workday);

        println!("== commute #{trip}: migrate back with IM ==");
        let back = run_im(cfg.clone(), outcome);
        assert!(back.report.consistent, "IM must preserve the environment");
        println!(
            "  moved {:>8.1} MB in {:>6.1} s (downtime {:.0} ms) — {} disk iterations\n",
            back.report.migrated_mb(),
            back.report.total_time_secs,
            back.report.downtime_ms,
            back.report.disk_iterations.len(),
        );
        outcome = back;
    }

    println!(
        "Every commute after the first moves ~the day's working set instead of the\n\
         whole 40 GB image — the paper's telecommuting use case."
    );
}
