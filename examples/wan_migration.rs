//! Wide-area migration ablation: the paper's scheme on a slow link.
//!
//! Bradford et al. (the delta-queue comparison point) target WAN
//! migration; this example runs TPM over a 100 Mbit link and shows that
//! the block-bitmap scheme still converges — pre-copy just takes
//! proportionally longer, while downtime stays in the hundreds of
//! milliseconds because the freeze phase still only carries the memory
//! tail, the CPU context and the bitmap.
//!
//! ```text
//! cargo run --release --example wan_migration
//! ```

use block_bitmap_migration::prelude::*;

fn main() {
    // Scale the disk down to 4 GiB so the WAN run stays illustrative
    // (a 40 GB disk at ~12 MB/s would take ~an hour of virtual time —
    // feel free to try it; it simulates in seconds).
    let base = MigrationConfig {
        disk_blocks: 1_048_576, // 4 GiB
        ..MigrationConfig::paper_testbed()
    };

    println!(
        "{:<28} {:>11} {:>14} {:>11} {:>11}",
        "link", "total (s)", "downtime (ms)", "data (MB)", "consistent"
    );
    for (label, link) in [
        ("Gigabit LAN (paper)", Link::gigabit()),
        ("100 Mbit WAN", Link::fast_ethernet()),
    ] {
        let cfg = MigrationConfig {
            link,
            ..base.clone()
        };
        let out = run_tpm(cfg, WorkloadKind::Web);
        println!(
            "{:<28} {:>11.1} {:>14.1} {:>11.0} {:>11}",
            label,
            out.report.total_time_secs,
            out.report.downtime_ms,
            out.report.migrated_mb(),
            out.report.consistent
        );
    }

    println!(
        "\nOn the WAN the pre-copy stretches with the link, but downtime stays\n\
         bounded: freeze-and-copy still ships only the dirty-page tail, the CPU\n\
         context and the (tiny) block-bitmap."
    );
}
