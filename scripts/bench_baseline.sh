#!/usr/bin/env bash
# Record the repo's performance baseline.
#
# Compiles the criterion suite, runs the perf_baseline harness over every
# scenario family (bitmap scans, codec encode/decode, end-to-end sim
# migrations), verifies the bulk codec path keeps its >= 3x lead over the
# per-word reference, and writes p50/p99 per scenario to
# BENCH_baseline.json at the repo root.
#
#   scripts/bench_baseline.sh [--quick]
#
# --quick cuts iteration counts ~10x for a fast smoke run; don't check in
# a baseline produced with it. Compare later runs against the recorded
# file with scripts/bench_compare.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_baseline.json}"
QUICK=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=(--quick) ;;
    *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
  esac
done

echo "== criterion suite compiles =="
cargo bench --no-run --locked

echo "== perf baseline -> $OUT =="
cargo run --release -q -p bench-suite --bin perf_baseline -- \
  --verify-speedup "${QUICK[@]}" --out "$OUT"

echo "baseline recorded in $OUT"
