#!/usr/bin/env bash
# Compare a fresh perf run against the checked-in baseline.
#
#   scripts/bench_compare.sh [BASELINE] [--full]
#
# Reruns every perf_baseline scenario (quick iterations by default; pass
# --full for baseline-grade counts) and fails when any scenario's p50
# regresses more than BENCH_THRESHOLD percent past the recorded p50.
#
#   BENCH_THRESHOLD   allowed p50 regression in percent (default 75 —
#                     loose on purpose: the gate is for algorithmic
#                     regressions, not shared-runner jitter)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_baseline.json"
MODE=(--quick)
for arg in "$@"; do
  case "$arg" in
    --full) MODE=() ;;
    -*) echo "usage: $0 [BASELINE] [--full]" >&2; exit 2 ;;
    *) BASELINE="$arg" ;;
  esac
done
THRESHOLD="${BENCH_THRESHOLD:-75}"

if [[ ! -f "$BASELINE" ]]; then
  echo "no baseline at $BASELINE — record one with scripts/bench_baseline.sh" >&2
  exit 2
fi

cargo run --release -q -p bench-suite --bin perf_baseline -- \
  --compare "$BASELINE" --threshold "$THRESHOLD" "${MODE[@]}"
