#!/usr/bin/env bash
# Record this PR's perf run alongside the baseline.
#
# Runs the perf_baseline harness with every --verify-speedup gate (bulk
# codec >= 3x naive, LZ >= 2x compression within its memcpy budget,
# fan-in >= 70% of owed fulls off-source, and the WAN-profile scenario
# run completing consistent) and writes p50/p99 per scenario to
# BENCH_pr10.json at the repo root, next to BENCH_baseline.json,
# BENCH_pr7.json and BENCH_pr9.json. Checking the file in keeps the
# per-PR perf trajectory non-empty: any later PR can diff its own run
# against every recorded predecessor, not just the original baseline.
#
#   scripts/bench_record.sh [--quick] [OUT]
#
# --quick cuts iteration counts ~10x for a fast smoke run; don't check in
# a record produced with it.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_pr10.json"
QUICK=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=(--quick) ;;
    -*) echo "usage: $0 [--quick] [OUT]" >&2; exit 2 ;;
    *) OUT="$arg" ;;
  esac
done

echo "== perf record -> $OUT =="
cargo run --release -q -p bench-suite --bin perf_baseline -- \
  --verify-speedup "${QUICK[@]}" --out "$OUT"

echo "perf run recorded in $OUT"
