#!/usr/bin/env bash
# Tier-1 verification + lint gate. Run from anywhere; no network needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (check only) =="
cargo fmt --all -- --check

echo "== tier-1: release build =="
# --workspace so every bin (vmmigrate, repro, perf_baseline, lintkit)
# is fresh before the smoke matrices below run them from target/.
cargo build --release --workspace --locked

echo "== tier-1: workspace tests =="
cargo test -q --workspace --locked

echo "== tier-1: benches compile =="
# Bit-rot guard only: compiles every [[bench]] target (and bin deps)
# without running them. Timing runs live in scripts/bench_baseline.sh.
cargo bench --no-run --locked

echo "== perf gate: compare against BENCH_baseline.json =="
# Quick-iteration rerun of every perf scenario; fails when a p50 regresses
# past BENCH_THRESHOLD percent (default 75 — loose on purpose, the gate is
# for algorithmic regressions, not shared-runner jitter).
scripts/bench_compare.sh

echo "== scenario smoke matrix: 3 seeds x {partition, wan, maintenance} =="
# Every checked-in chaos scenario must complete (all migrations served,
# every image block-exact) under several seeds, exercising the full
# parse -> topology compile -> chaos timeline -> orchestrator path the
# way a user would drive it. The CLI exits non-zero on any inconsistent
# or incomplete run, so plain set -e is the assertion.
for scn in partition wan maintenance; do
  for seed in 1 2 3; do
    echo "-- scenarios/$scn.scn seed=$seed"
    ./target/release/vmmigrate orchestrate \
      --scenario "scenarios/$scn.scn" --seed "$seed" >/dev/null
  done
done

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== lintkit: protocol & concurrency invariants =="
# Panic-free transport zones, acyclic lock order (no guard held across a
# blocking call, single-hop helper propagation), exhaustive protocol
# matches, the unsafe allowlist, deterministic-zone container/clock
# hygiene, reactor-ready blocking calls, and dropped Results. Zones come
# from lintkit.toml. Rules: cargo run -p lintkit -- --list-rules
# The JSON report is written as a CI artifact and the gate asserts a
# clean exit on the same invocation that produced it.
mkdir -p target
cargo run -q -p lintkit --release -- --workspace --format json \
  | tee target/lintkit-report.json
echo "lintkit report: target/lintkit-report.json"

echo "CI OK"
