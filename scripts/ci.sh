#!/usr/bin/env bash
# Tier-1 verification + lint gate. Run from anywhere; no network needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: workspace tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== no unwrap/expect on transport receive paths =="
# Transport receives in the live engine and the TCP transport must
# propagate typed errors (MigrationError / TransportError), never panic.
# Test modules sit below the #[cfg(test)] marker and are exempt.
fail=0
for f in crates/migrate/src/live/*.rs crates/simnet/src/tcp.rs; do
  bad=$(awk -v file="$f" '/#\[cfg\(test\)\]/{exit} {print file ":" FNR ": " $0}' "$f" |
    grep -E '\.(recv|recv_timeout|try_recv)\([^)]*\)[^;]*\.(unwrap|expect)\(' || true)
  if [ -n "$bad" ]; then
    echo "$bad"
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "error: transport receives must propagate errors, not panic" >&2
  exit 1
fi

echo "CI OK"
