//! # block-bitmap-migration
//!
//! A full reproduction of *"Live and Incremental Whole-System Migration of
//! Virtual Machines Using Block-Bitmap"* (Luo, Zhang, Wang, Wang, Sun,
//! Chen — IEEE CLUSTER 2008) as a Rust workspace.
//!
//! The paper migrates a VM's **whole system state** — local disk, memory,
//! CPU — between hosts with ~100 ms of downtime, using:
//!
//! * **Three-Phase Migration (TPM)**: iterative disk pre-copy under a
//!   dirty **block-bitmap**, Xen-style memory pre-copy, a freeze phase
//!   that ships only the remaining dirty pages + CPU context + *the
//!   bitmap itself*, and a push-and-pull post-copy that synchronizes the
//!   last dirty blocks after the VM has already resumed.
//! * **Incremental Migration (IM)**: a fresh bitmap keeps recording
//!   writes at the destination, so migrating *back* moves only the blocks
//!   dirtied since.
//!
//! This crate is the façade: it re-exports every subsystem so downstream
//! users can depend on one crate. See the individual crates for deep
//! documentation:
//!
//! * [`block_bitmap`] — flat / layered / atomic dirty-block bitmaps.
//! * [`des`] — deterministic discrete-event simulation kernel.
//! * [`vdisk`] — virtual block devices with write interception.
//! * [`vmstate`] — guest memory, CPU context, domain lifecycle.
//! * [`simnet`] — link models, rate limiting, wire protocol, transport.
//! * [`workloads`] — the paper's workload generators and analysis.
//! * [`migrate`] — the TPM/IM engines (simulated and live) and baselines.
//! * [`telemetry`] — dual-clock tracing, metrics, and event journal.
//! * [`orchestrator`] — fleet-scale scheduling: many concurrent
//!   migrations across N hosts under pluggable (IM-aware) policies.
//! * [`scenario`] — deterministic cluster topologies and chaos
//!   schedules: partitions, WAN links, heterogeneous fleets, rolling
//!   maintenance and workload cycles, all in virtual time.
//!
//! ## Quickstart
//!
//! ```
//! use block_bitmap_migration::prelude::*;
//!
//! // Simulate the paper's testbed at reduced scale: migrate a web-serving
//! // guest and inspect the report.
//! let cfg = MigrationConfig::small();
//! let outcome = run_tpm(cfg, WorkloadKind::Web);
//! assert!(outcome.report.consistent);
//! assert!(outcome.report.downtime_ms < 1_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use block_bitmap;
pub use des;
pub use migrate;
pub use orchestrator;
pub use scenario;
pub use simnet;
pub use telemetry;
pub use vdisk;
pub use vmstate;
pub use workloads;

/// The most common imports for using the library.
pub mod prelude {
    pub use block_bitmap::{AtomicBitmap, BlockMapper, DirtyMap, FlatBitmap, LayeredBitmap};
    pub use des::{SimDuration, SimRng, SimTime};
    pub use migrate::baselines::{run_delta_queue, run_freeze_and_copy, run_on_demand};
    pub use migrate::live::{
        run_live_migration, run_live_migration_faulty, LiveConfig, LiveOutcome, MigrationError,
    };
    pub use migrate::sim::{dwell, run_im, run_tpm, TpmEngine, TpmOutcome};
    pub use migrate::{BitmapKind, MigrationConfig, MigrationReport, RetryPolicy};
    pub use orchestrator::{
        Cluster, ClusterConfig, ClusterReport, Orchestrator, Policy, Scenario, Scheduler,
    };
    pub use scenario::{ChaosEvent, CycleSpec, ScenarioDynamics, ScenarioSpec, TimedEvent};
    pub use simnet::fault::FaultPlan;
    pub use simnet::Link;
    pub use telemetry::Recorder;
    pub use vdisk::{MetaDisk, TrackedDisk, VirtualDisk};
    pub use vmstate::{CpuState, Domain, GuestMemory, WssModel};
    pub use workloads::{Workload, WorkloadKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let cfg = MigrationConfig::small();
        let out = run_tpm(cfg, WorkloadKind::Idle);
        assert!(out.report.consistent);
    }
}
