//! Cross-scheme invariants: the qualitative claims of §II and §III must
//! hold between TPM and every baseline on identical scenarios.

use block_bitmap_migration::migrate::baselines::{
    dependent_availability, run_delta_queue, run_freeze_and_copy, run_on_demand,
};
use block_bitmap_migration::prelude::*;

fn cfg() -> MigrationConfig {
    MigrationConfig::small()
}

#[test]
fn tpm_downtime_is_orders_of_magnitude_below_freeze_and_copy() {
    let tpm = run_tpm(cfg(), WorkloadKind::Web).report;
    let fc = run_freeze_and_copy(cfg(), WorkloadKind::Web);
    assert!(fc.consistent && tpm.consistent);
    assert!(
        tpm.downtime_ms * 20.0 < fc.downtime_ms,
        "TPM {} ms vs freeze-and-copy {} ms",
        tpm.downtime_ms,
        fc.downtime_ms
    );
    // Freeze-and-copy moves the theoretical minimum (no redundancy) —
    // TPM pays a small premium for liveness.
    assert!(tpm.ledger.total() >= fc.ledger.total());
}

#[test]
fn on_demand_matches_shared_storage_downtime_but_never_finishes() {
    let od = run_on_demand(cfg(), WorkloadKind::Web, SimDuration::from_secs(120));
    let tpm = run_tpm(cfg(), WorkloadKind::Web).report;
    // Downtime parity (both only move the CPU context + memory tail
    // while suspended).
    assert!(od.downtime_ms < 500.0);
    // But the destination is still incomplete at the horizon while TPM
    // finished completely.
    assert!(od.residual_blocks > 0);
    assert_eq!(tpm.residual_blocks, 0);
    assert!(!od.consistent);
}

#[test]
fn delta_queue_pays_for_rewrites_tpm_does_not() {
    // The web workload rewrites ~25 % of its writes; each rewrite is a
    // redundant delta for Bradford's scheme but free for the bitmap.
    let dq = run_delta_queue(cfg(), WorkloadKind::Web);
    let tpm = run_tpm(cfg(), WorkloadKind::Web).report;
    assert!(dq.consistent && tpm.consistent);
    assert!(
        dq.redundant_deltas > 0,
        "locality must produce redundant deltas"
    );
    assert!(
        tpm.ledger.disk_total() < dq.ledger.disk_total(),
        "tpm {} >= delta-queue {}",
        tpm.ledger.disk_total(),
        dq.ledger.disk_total()
    );
    // And TPM never blocks destination I/O; the delta queue does.
    assert_eq!(tpm.io_blocked_secs, 0.0);
    assert!(dq.io_blocked_secs > 0.0);
}

#[test]
fn availability_argument() {
    // §II-B: "Let p (p<1) stand for a machine's availability, then the
    // migrated VM system's availability is p², which is less than p."
    for p in [0.9, 0.99, 0.999] {
        let single = dependent_availability(p, 1);
        let dual = dependent_availability(p, 2);
        assert!(dual < single);
        assert!((dual - p * p).abs() < 1e-12);
    }
}

#[test]
fn every_scheme_agrees_on_the_minimum_payload() {
    // All consistent schemes must move at least the disk image once.
    let min_disk = cfg().disk_bytes();
    for report in [
        run_tpm(cfg(), WorkloadKind::Idle).report,
        run_freeze_and_copy(cfg(), WorkloadKind::Idle),
        run_delta_queue(cfg(), WorkloadKind::Idle),
    ] {
        assert!(report.consistent, "{} inconsistent", report.scheme);
        assert!(
            report.ledger.disk_total() >= min_disk,
            "{} moved less than the disk image",
            report.scheme
        );
    }
}
