//! The repro harness must run every experiment end-to-end at CI scale
//! and produce well-formed output — guards the (d) deliverable.

use bench_suite::{experiments, Scale};

#[test]
fn every_experiment_runs_at_ci_scale() {
    for id in experiments::ALL {
        let res = experiments::run(id, Scale::Ci)
            .unwrap_or_else(|| panic!("experiment {id} unknown to the dispatcher"));
        assert_eq!(res.id, id);
        assert!(!res.title.is_empty());
        assert!(
            res.human.len() > 100,
            "{id} produced a suspiciously short rendering"
        );
        assert!(res.json.is_object(), "{id} must emit a JSON object");
        assert!(
            res.json.get("scale").is_some(),
            "{id} JSON must record its scale"
        );
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(experiments::run("not-an-experiment", Scale::Ci).is_none());
}

#[test]
fn table1_ci_scale_is_consistent_and_ordered() {
    let res = experiments::run("table1", Scale::Ci).expect("table1 exists");
    let rows = res.json["rows"].as_array().expect("rows array");
    assert_eq!(rows.len(), 3);
    for row in rows {
        assert_eq!(row["report"]["consistent"], true, "{}", row["workload"]);
    }
    // The diabolical server must be the slowest migration (Table I's
    // ordering), at any scale.
    let t = |i: usize| rows[i]["report"]["total_time_secs"].as_f64().expect("f64");
    assert!(t(2) > t(0) && t(2) > t(1));
}

#[test]
fn locality_ratios_track_paper_ordering() {
    let res = experiments::run("locality", Scale::Ci).expect("locality exists");
    let rows = res.json["rows"].as_array().expect("rows");
    let ratio = |i: usize| rows[i]["measured"]["rewrite_ratio"].as_f64().expect("f64");
    // kernel < web < bonnie, as in §IV-A-2.
    assert!(
        ratio(0) < ratio(1),
        "kernel {} !< web {}",
        ratio(0),
        ratio(1)
    );
    assert!(
        ratio(1) < ratio(2),
        "web {} !< bonnie {}",
        ratio(1),
        ratio(2)
    );
}

#[test]
fn cluster_im_aware_wave2_beats_fifo() {
    let res = experiments::run("cluster", Scale::Ci).expect("cluster exists");
    let rows = res.json["rows"].as_array().expect("rows");
    let by_policy = |name: &str| {
        rows.iter()
            .find(|r| r["policy"] == name)
            .unwrap_or_else(|| panic!("no {name} row"))
    };
    for row in rows {
        assert_eq!(row["all_consistent"], true, "{}", row["policy"]);
        assert_eq!(row["completed"], row["migrations"], "{}", row["policy"]);
    }
    let fifo = by_policy("fifo");
    let im = by_policy("im-aware");
    assert!(im["incremental"].as_u64().expect("u64") > 0);
    assert_eq!(fifo["incremental"].as_u64(), Some(0));
    // The paper's §V win at fleet scale: the return wave ships only the
    // bitmap diff when the scheduler lands VMs on their stale replicas.
    let w2 = |r: &serde_json::Value| r["wave2_bytes"].as_u64().expect("u64");
    assert!(
        w2(im) < w2(fifo) / 2,
        "im-aware wave 2 {} !< half of fifo wave 2 {}",
        w2(im),
        w2(fifo)
    );
}

#[test]
fn table3_holds_the_one_percent_claim() {
    let res = experiments::run("table3", Scale::Ci).expect("table3 exists");
    assert_eq!(res.json["holds_under_1pct"], true);
}
