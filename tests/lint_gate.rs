//! Tier-1 lint gate: the workspace passes its own static analysis.
//!
//! This mirrors `crates/lintkit/tests/workspace_clean.rs` at the root
//! package, so a plain `cargo test -q` (the tier-1 invocation) enforces
//! the migration-protocol and concurrency invariants even when the
//! workspace members' own test suites are not being run.

use lintkit::Workspace;

#[test]
fn workspace_passes_lintkit() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = Workspace::scan(root).expect("workspace scan");
    let violations = ws.run();
    assert!(
        violations.is_empty(),
        "lintkit violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn all_seven_rules_are_registered() {
    // The clean run above is only meaningful if every analysis actually
    // ran — a rule dropped from the registry would pass silently.
    let ids: Vec<&str> = lintkit::rules::all_rules().iter().map(|r| r.id()).collect();
    assert_eq!(
        ids,
        [
            "no-panic-transport",
            "lock-order",
            "protocol-exhaustive",
            "unsafe-audit",
            "determinism",
            "no-blocking",
            "result-dropped",
        ],
        "rule registry drifted"
    );
}

#[test]
fn determinism_zones_carry_no_allow_entries() {
    // The determinism invariant (same seed ⇒ byte-identical journals,
    // tests/telemetry_journal.rs) is machine-checked only as long as
    // nobody waives it: violations get fixed, not excused.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = lintkit::Config::load(root).expect("lintkit.toml loads");
    assert_eq!(
        cfg.allow.get("determinism").map(Vec::as_slice),
        Some(&[][..]),
        "determinism allow list must stay empty"
    );
    assert_eq!(
        cfg.allow.get("no-blocking").map(Vec::as_slice),
        Some(&[][..]),
        "no-blocking allow list must stay empty"
    );
}
