//! Tier-1 lint gate: the workspace passes its own static analysis.
//!
//! This mirrors `crates/lintkit/tests/workspace_clean.rs` at the root
//! package, so a plain `cargo test -q` (the tier-1 invocation) enforces
//! the migration-protocol and concurrency invariants even when the
//! workspace members' own test suites are not being run.

use lintkit::Workspace;

#[test]
fn workspace_passes_lintkit() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = Workspace::scan(root).expect("workspace scan");
    let violations = ws.run();
    assert!(
        violations.is_empty(),
        "lintkit violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
