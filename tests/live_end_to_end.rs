//! Live (threaded) migration end-to-end tests: real bytes, real
//! concurrency, ground-truth verification against the guest's own write
//! log.

use block_bitmap_migration::des;
use block_bitmap_migration::migrate::live::{
    run_live_migration, run_live_migration_with, LiveConfig,
};
use block_bitmap_migration::prelude::*;
use std::sync::Arc;

fn base_cfg() -> LiveConfig {
    LiveConfig {
        num_blocks: 16_384,
        ..LiveConfig::test_default()
    }
}

fn assert_fully_consistent(out: &block_bitmap_migration::migrate::live::LiveOutcome) {
    assert_eq!(out.read_violations, 0, "guest observed stale data");
    let bad = out.inconsistent_blocks();
    assert!(
        bad.is_empty(),
        "{} inconsistent blocks (first: {:?})",
        bad.len(),
        bad.first()
    );
}

#[test]
fn live_web_workload_consistent() {
    let out = run_live_migration(&base_cfg()).expect("migration completes");
    assert_fully_consistent(&out);
    assert_eq!(out.iterations[0], 16_384, "first pass ships the whole disk");
    assert_eq!(out.reconnects, 0, "clean transport needs no recovery");
}

#[test]
fn live_video_workload_consistent() {
    let cfg = LiveConfig {
        workload: WorkloadKind::Video,
        seed: 11,
        ..base_cfg()
    };
    let out = run_live_migration(&cfg).expect("migration completes");
    assert_fully_consistent(&out);
}

#[test]
fn live_diabolical_workload_consistent() {
    // The I/O storm: many iterations, many dirty blocks at freeze, and
    // post-resume reads that race with pushes (pull path exercised).
    let cfg = LiveConfig {
        workload: WorkloadKind::Diabolical,
        dt_per_tick: des::SimDuration::from_millis(100),
        max_iterations: 4,
        // Slow the wire so the guest gets plenty of ticks to dirty blocks
        // during pre-copy (~0.5 s of migration wall time).
        rate_limit: Some(24.0 * 1024.0 * 1024.0),
        seed: 13,
        // Deterministic de-flake: guarantee the guest completes ticks
        // between disk pre-copy convergence and suspend, so the storm
        // demonstrably leaves dirty blocks in the freeze bitmap even when
        // parallel test load starves the driver thread.
        min_guest_ticks: 10,
        ..base_cfg()
    };
    let out = run_live_migration(&cfg).expect("migration completes");
    assert_fully_consistent(&out);
    assert!(
        out.pushed + out.pulled + out.dropped >= out.frozen_dirty,
        "every frozen-dirty block must be pushed, pulled or superseded"
    );
    assert!(
        out.frozen_dirty > 0,
        "the storm must leave dirty blocks at freeze"
    );
}

#[test]
fn live_rate_limited_consistent() {
    let cfg = LiveConfig {
        rate_limit: Some(32.0 * 1024.0 * 1024.0),
        seed: 17,
        ..base_cfg()
    };
    let out = run_live_migration(&cfg).expect("migration completes");
    assert_fully_consistent(&out);
}

#[test]
fn live_idle_guest_single_iteration() {
    let cfg = LiveConfig {
        workload: WorkloadKind::Idle,
        num_blocks: 8_192,
        ..base_cfg()
    };
    let out = run_live_migration(&cfg).expect("migration completes");
    assert_fully_consistent(&out);
    assert_eq!(
        out.iterations.len(),
        1,
        "an idle guest converges immediately"
    );
    assert_eq!(out.frozen_dirty, 0);
    assert_eq!(out.pushed + out.pulled, 0);
}

#[test]
fn live_im_roundtrip() {
    let cfg = base_cfg();
    let first = run_live_migration(&cfg).expect("migration completes");
    assert_fully_consistent(&first);

    // Migrate back: only blocks dirtied since the primary migration (the
    // destination's new-write bitmap, plus any still-divergent blocks)
    // need to move.
    let mut im_bitmap = first.new_bitmap.clone();
    let src_back = Arc::clone(&first.dst_disk);
    let dst_back = Arc::clone(&first.src_disk);
    for b in src_back.disk().diff_blocks(dst_back.disk()) {
        im_bitmap.set(b);
    }
    let cfg_back = LiveConfig {
        seed: cfg.seed + 100,
        ..cfg.clone()
    };
    let out = run_live_migration_with(&cfg_back, src_back, dst_back, Some(im_bitmap.clone()))
        .expect("IM migration completes");
    assert_eq!(out.read_violations, 0);
    assert_eq!(
        out.iterations[0],
        im_bitmap.count_ones() as u64,
        "IM's first pass ships exactly the inherited bitmap"
    );
    assert!(
        (out.iterations[0] as usize) < cfg.num_blocks / 2,
        "IM must move far less than the whole disk"
    );
    // After the back-migration, the disks agree except where its own
    // guest wrote post-resume.
    let diffs = out.src_disk.disk().diff_blocks(out.dst_disk.disk());
    assert!(diffs.into_iter().all(|b| out.new_bitmap.get(b)));
}

#[test]
fn live_migration_ships_bitmap_not_blocks_in_freeze() {
    // The defining trick of the paper: the freeze phase carries the
    // bitmap (bytes), never the dirty blocks themselves.
    let out = run_live_migration(&base_cfg()).expect("migration completes");
    let bitmap_bytes = out
        .src_ledger
        .get(block_bitmap_migration::simnet::proto::Category::Bitmap);
    assert!(bitmap_bytes > 0, "a bitmap must cross during freeze");
    assert!(
        bitmap_bytes < 64 * 1024,
        "the bitmap must be small ({} bytes)",
        bitmap_bytes
    );
}

#[test]
fn live_migration_over_real_tcp_sockets() {
    // The same protocol, framed through simnet::codec over actual
    // loopback TCP — process-boundary-ready.
    use block_bitmap_migration::migrate::live::run_live_migration_tcp;
    let cfg = LiveConfig {
        num_blocks: 16_384,
        seed: 23,
        ..LiveConfig::test_default()
    };
    let out = run_live_migration_tcp(&cfg).expect("tcp migration completes");
    assert_fully_consistent(&out);
    assert_eq!(out.iterations[0], 16_384);
    // Every block's raw content was read and shipped in some form; with
    // the default dedup+compression the bytes that actually crossed the
    // socket are fewer than the raw image.
    assert!(out.wire.bytes_raw >= (16_384 * 512) as u64);
    assert!(
        out.wire.bytes_sent < out.wire.bytes_raw,
        "wire savings expected: sent {} raw {}",
        out.wire.bytes_sent,
        out.wire.bytes_raw
    );
    assert!(out.src_ledger.total() > 0);
}

#[test]
fn live_memory_migrates_byte_exactly() {
    // Whole-system: the guest dirties RAM pages throughout; after
    // migration the destination RAM must hold exactly the guest's last
    // write to every page (or the initial image).
    let cfg = LiveConfig {
        num_blocks: 16_384,
        mem_pages: 4_096,
        mem_writes_per_tick: 16,
        // Slow the wire so the guest demonstrably dirties pages while the
        // memory pre-copy is in flight.
        rate_limit: Some(16.0 * 1024.0 * 1024.0),
        seed: 31,
        ..LiveConfig::test_default()
    };
    let out = run_live_migration(&cfg).expect("migration completes");
    assert_fully_consistent(&out);
    assert!(!out.mem_iterations.is_empty(), "memory pre-copy must run");
    assert_eq!(
        out.mem_iterations[0], 4_096,
        "first memory pass ships all pages"
    );
    assert!(
        out.mem_iterations.len() > 1 || out.frozen_mem_dirty > 0,
        "a dirtying guest must force memory iterations or a freeze tail"
    );
    let bad_pages = out.inconsistent_pages();
    assert!(
        bad_pages.is_empty(),
        "{} inconsistent RAM pages (first: {:?})",
        bad_pages.len(),
        bad_pages.first()
    );
}

#[test]
fn live_memory_over_tcp() {
    use block_bitmap_migration::migrate::live::run_live_migration_tcp;
    let cfg = LiveConfig {
        num_blocks: 16_384,
        mem_pages: 2_048,
        mem_writes_per_tick: 8,
        seed: 37,
        ..LiveConfig::test_default()
    };
    let out = run_live_migration_tcp(&cfg).expect("tcp migration completes");
    assert_fully_consistent(&out);
    assert!(out.inconsistent_pages().is_empty());
}

#[test]
fn concurrent_live_migrations_do_not_interfere() {
    // Two independent whole-system migrations running simultaneously on
    // separate thread sets — a basic thread-safety stress for the whole
    // stack (disks, bitmaps, transports, drivers).
    let mk = |seed: u64, kind: WorkloadKind| LiveConfig {
        num_blocks: 16_384,
        workload: kind,
        seed,
        ..LiveConfig::test_default()
    };
    let a = std::thread::spawn(move || {
        run_live_migration(&mk(101, WorkloadKind::Web)).expect("migration A completes")
    });
    let b = std::thread::spawn(move || {
        run_live_migration(&mk(202, WorkloadKind::Video)).expect("migration B completes")
    });
    let out_a = a.join().expect("migration A panicked");
    let out_b = b.join().expect("migration B panicked");
    assert_fully_consistent(&out_a);
    assert_fully_consistent(&out_b);
    assert!(out_a.inconsistent_pages().is_empty());
    assert!(out_b.inconsistent_pages().is_empty());
}

#[test]
fn cow_overlay_seeds_a_collective_style_live_migration() {
    // A guest on a CoW disk over a shared base image: the overlay bitmap
    // is exactly the IM-style initial set — only diverged blocks cross.
    use block_bitmap_migration::vdisk::{CowStorage, DenseStorage, Storage};
    let blocks = 16_384usize;
    let mut base = DenseStorage::new(512, blocks);
    for b in 0..blocks {
        base.write_block(b, &vdisk_stamp(b, 0));
    }
    let base: block_bitmap_migration::vdisk::BaseImage = Arc::new(base);

    // Source guest ran on a CoW overlay and diverged on 200 blocks.
    let mut cow = CowStorage::new(Arc::clone(&base));
    for b in (0..200).map(|i| i * 80) {
        cow.write_block(b, &vdisk_stamp(b, 0)); // same stamp-0 content: the
                                                // *bitmap*, not content, drives the transfer set
    }
    let diff = cow.overlay_blocks();
    let src = Arc::new(TrackedDisk::new(Arc::new(
        block_bitmap_migration::vdisk::VirtualDisk::new(Box::new(cow)),
    )));
    // Destination holds the same base image (that is the Collective's
    // premise).
    let dst_cow = CowStorage::new(base);
    let dst = Arc::new(TrackedDisk::new(Arc::new(
        block_bitmap_migration::vdisk::VirtualDisk::new(Box::new(dst_cow)),
    )));

    let cfg = LiveConfig {
        num_blocks: blocks,
        seed: 77,
        ..LiveConfig::test_default()
    };
    let out = run_live_migration_with(&cfg, src, dst, Some(diff.clone()))
        .expect("CoW-seeded migration completes");
    assert_eq!(out.read_violations, 0);
    assert_eq!(
        out.iterations[0],
        diff.count_ones() as u64,
        "first pass ships exactly the CoW diff"
    );
    assert!(out.inconsistent_blocks().is_empty());
}

fn vdisk_stamp(block: usize, stamp: u64) -> Vec<u8> {
    block_bitmap_migration::vdisk::stamp_bytes(block, stamp, 512)
}

use block_bitmap_migration::vdisk::TrackedDisk;
