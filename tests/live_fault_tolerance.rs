//! Fault-tolerant live migration: deterministic transport faults are
//! injected mid-migration and the engine must reconnect and resume from
//! the block-bitmap, finishing with the exact same consistency verdict a
//! fault-free run produces.

use block_bitmap_migration::migrate::live::{
    run_live_migration_faulty, run_live_migration_tcp_faulty, LiveConfig, MigrationError,
};
use block_bitmap_migration::migrate::RetryPolicy;
use block_bitmap_migration::simnet::fault::FaultPlan;
use block_bitmap_migration::simnet::proto::Category;
use block_bitmap_migration::telemetry::{Event, FaultLabel, Recorder, Side};
use std::time::Duration;

fn fault_cfg() -> LiveConfig {
    LiveConfig {
        num_blocks: 16_384,
        // Guarantee the guest dirties blocks between pre-copy convergence
        // and suspend, so post-copy has real push traffic to fault.
        min_guest_ticks: 25,
        retry: RetryPolicy {
            max_reconnects: 4,
            backoff: Duration::from_millis(10),
            phase_timeout: Duration::from_secs(5),
            outage_budget: None,
        },
        ..LiveConfig::test_default()
    }
}

fn assert_consistent(out: &block_bitmap_migration::migrate::live::LiveOutcome) {
    assert_eq!(out.read_violations, 0, "guest observed stale data");
    let bad = out.inconsistent_blocks();
    assert!(
        bad.is_empty(),
        "{} inconsistent blocks (first: {:?})",
        bad.len(),
        bad.first()
    );
    let bad_pages = out.inconsistent_pages();
    assert!(
        bad_pages.is_empty(),
        "{} inconsistent RAM pages (first: {:?})",
        bad_pages.len(),
        bad_pages.first()
    );
}

#[test]
fn resets_during_precopy_and_postcopy_recover() {
    // The headline scenario: one connection reset in the middle of the
    // first disk pre-copy pass (message 20 of 64), a second one after the
    // guest has already resumed on the destination (5th post-copy push).
    // Both must be absorbed: reconnect, exchange ResumeFrom bitmaps,
    // retransmit only what the dead sessions left uncertain.
    let cfg = fault_cfg();
    let plan = FaultPlan::none()
        .reset_after_category(0, Category::DiskPrecopy, 20)
        .reset_after_category(1, Category::DiskPush, 5);
    let out = run_live_migration_faulty(&cfg, plan).expect("faulted migration recovers");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 2, "both injected resets must be survived");
    assert_eq!(out.resume_owed.len(), 2);

    // Resume efficiency (the bitmap is the recovery ledger, not a restart
    // marker): the pre-copy reconnect owes only the blocks of the one
    // unconfirmed batch, never a second full-disk pass.
    assert!(out.resume_owed[0] >= 1, "the failed batch must be owed");
    assert!(
        (out.resume_owed[0] as usize) < cfg.num_blocks / 4,
        "resume must not degenerate into a full resend ({} owed)",
        out.resume_owed[0]
    );
    // Ledger proof: total pre-copy disk traffic stays well under the two
    // full passes a restart-from-scratch would cost.
    let full_pass_bytes = (cfg.num_blocks * (cfg.block_size + 30)) as u64;
    let precopy = out.src_ledger.get(Category::DiskPrecopy);
    assert!(
        precopy < full_pass_bytes * 3 / 2,
        "pre-copy shipped {precopy} bytes — a full pass is ~{full_pass_bytes}; \
         resume must not re-ship the whole disk"
    );
}

#[test]
fn reset_mid_dedup_stream_converges_with_wire_savings() {
    // A reset lands in the middle of a dedup-enabled pre-copy stream
    // (test_default runs with dedup and compression on). The resumed
    // session must not trust the dead session's reference state: the
    // destination reseeds the source with a ContentSummary of what it
    // verifiably holds, and the re-owed blocks that did arrive before
    // the cut then cross as 16-byte references instead of full payloads.
    // The end state must be exactly as consistent as a fault-free run,
    // and the wire accounting must still show content-aware savings.
    let cfg = fault_cfg();
    assert!(
        cfg.dedup && cfg.compress,
        "scenario exercises the dedup stream"
    );
    let plan = FaultPlan::none().reset_after_category(0, Category::DiskPrecopy, 20);
    let out = run_live_migration_faulty(&cfg, plan).expect("faulted dedup migration recovers");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 1);
    assert!(
        out.wire.blocks_deduped > 0,
        "the re-owed batch must dedup against the reseeded content index"
    );
    assert!(
        out.wire.bytes_sent < out.wire.bytes_raw,
        "content-aware path must save wire bytes across the fault: sent {} raw {}",
        out.wire.bytes_sent,
        out.wire.bytes_raw
    );
}

#[test]
fn outage_budget_rides_out_a_partition_reset_storm() {
    // A network partition looks like a storm of connection resets: every
    // reconnect attempt dies until the partition heals. With only the
    // attempt counter (max_reconnects: 1), the storm below exhausts the
    // budget; with a wall-clock outage budget, the engine keeps
    // reconnecting on backoff until the link comes back — the paper's
    // bitmap-resume makes each ride-out cost one bitmap exchange, not a
    // restart.
    let storm = || {
        FaultPlan::none()
            .reset_after_category(0, Category::DiskPrecopy, 20)
            .reset_after_category(1, Category::DiskPrecopy, 5)
            .reset_after_category(2, Category::DiskPrecopy, 5)
        // Attempt 3: the partition healed; the session runs clean.
    };

    let impatient = fault_cfg();
    let impatient = LiveConfig {
        retry: RetryPolicy {
            max_reconnects: 1,
            ..impatient.retry
        },
        ..impatient
    };
    match run_live_migration_faulty(&impatient, storm()) {
        Err(MigrationError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 2, "counter-only policy dies mid-storm")
        }
        Err(other) => panic!("attempt-bounded run must exhaust retries, got {other:?}"),
        Ok(_) => panic!("attempt-bounded run must exhaust retries, but completed"),
    }

    let tolerant = fault_cfg();
    let tolerant = LiveConfig {
        retry: RetryPolicy {
            max_reconnects: 1,
            outage_budget: Some(Duration::from_secs(30)),
            ..tolerant.retry
        },
        ..tolerant
    };
    let out = run_live_migration_faulty(&tolerant, storm())
        .expect("outage budget must ride out the storm");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 3, "all three storm resets survived");
}

#[test]
fn truncated_frame_mid_precopy_is_retransmitted() {
    // A truncate fault makes one send *appear* to succeed while the frame
    // vanishes (the TCP-RST-after-buffered-write case). The per-session
    // shipped/received reconciliation must re-owe exactly that batch —
    // cumulative accounting would mark it delivered and lose the blocks.
    let cfg = fault_cfg();
    let plan = FaultPlan::none().truncate_after_messages(0, 10);
    let out = run_live_migration_faulty(&cfg, plan).expect("truncated migration recovers");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 1);
    assert!(
        out.resume_owed[0] >= cfg.batch as u64,
        "the silently-lost batch must be re-owed ({} owed)",
        out.resume_owed[0]
    );
}

#[test]
fn tcp_reset_recovers_over_real_sockets() {
    // Same recovery logic across a real network stack: the fault severs
    // the actual loopback socket, the destination re-accepts, the source
    // re-dials.
    let cfg = LiveConfig {
        num_blocks: 16_384,
        seed: 41,
        retry: RetryPolicy {
            max_reconnects: 2,
            backoff: Duration::from_millis(10),
            phase_timeout: Duration::from_secs(5),
            outage_budget: None,
        },
        ..LiveConfig::test_default()
    };
    let plan = FaultPlan::none().reset_after_category(0, Category::DiskPrecopy, 7);
    let out = run_live_migration_tcp_faulty(&cfg, plan).expect("tcp migration recovers");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 1);
}

#[test]
fn exhausted_reconnect_budget_is_a_typed_error() {
    // Every attempt dies on its first message and the policy allows one
    // reconnect: the migration must fail with RetriesExhausted — not a
    // panic, not a hang.
    let cfg = LiveConfig {
        num_blocks: 16_384,
        retry: RetryPolicy {
            max_reconnects: 1,
            backoff: Duration::from_millis(5),
            phase_timeout: Duration::from_secs(5),
            outage_budget: None,
        },
        ..LiveConfig::test_default()
    };
    let plan = FaultPlan::none()
        .reset_after_messages(0, 1)
        .reset_after_messages(1, 1);
    match run_live_migration_faulty(&cfg, plan) {
        Err(MigrationError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 2, "initial connection + one reconnect");
            assert!(!last.is_empty(), "the last failure must be reported");
        }
        Err(other) => panic!("expected RetriesExhausted, got {other}"),
        Ok(_) => panic!("migration cannot succeed when every attempt is reset"),
    }
}

#[test]
fn journal_counts_match_the_fault_plan() {
    // The telemetry journal is the black-box flight recorder for fault
    // runs: every injected fault and every survived reconnect must appear
    // in it, with counts matching the configured FaultPlan and the
    // engine's own tally.
    let cfg = LiveConfig {
        telemetry: Recorder::enabled(),
        ..fault_cfg()
    };
    let plan = FaultPlan::none()
        .reset_after_category(0, Category::DiskPrecopy, 20)
        .reset_after_category(1, Category::DiskPush, 5);
    let out = run_live_migration_faulty(&cfg, plan).expect("faulted migration recovers");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 2);

    let records = cfg.telemetry.records();
    let resets = records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                Event::FaultInjected {
                    fault: FaultLabel::Reset,
                    ..
                }
            )
        })
        .count();
    assert_eq!(resets, 2, "both configured resets must be journaled");

    // Source-side reconnect events are the journal's counterpart of
    // `LiveOutcome::reconnects`; their attempt numbers count up from 1.
    let mut attempts: Vec<u64> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::Reconnect {
                side: Side::Source,
                attempt,
            } => Some(attempt),
            _ => None,
        })
        .collect();
    attempts.sort_unstable();
    assert_eq!(attempts.len() as u32, out.reconnects);
    assert_eq!(attempts, vec![1, 2]);
}

#[test]
fn journal_records_a_stall_without_reconnects() {
    // A stall journals as an injected fault but causes no reconnect:
    // the fault count still matches the plan while the reconnect count
    // stays zero, matching the engine.
    let cfg = LiveConfig {
        num_blocks: 16_384,
        seed: 43,
        telemetry: Recorder::enabled(),
        ..LiveConfig::test_default()
    };
    let plan = FaultPlan::none().stall_after_messages(0, 12, Duration::from_millis(150));
    let out = run_live_migration_faulty(&cfg, plan).expect("stalled migration completes");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 0);

    let records = cfg.telemetry.records();
    let stalls = records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                Event::FaultInjected {
                    fault: FaultLabel::Stall,
                    ..
                }
            )
        })
        .count();
    assert_eq!(stalls, 1, "the configured stall must be journaled");
    assert!(
        !records
            .iter()
            .any(|r| matches!(r.event, Event::Reconnect { .. })),
        "a stall must not journal a reconnect"
    );
}

#[test]
fn stall_fault_delays_but_completes_without_reconnect() {
    // A stall is pure latency, not a failure: the migration rides it out
    // on the same connection.
    let cfg = LiveConfig {
        num_blocks: 16_384,
        seed: 43,
        ..LiveConfig::test_default()
    };
    let plan = FaultPlan::none().stall_after_messages(0, 12, Duration::from_millis(150));
    let out = run_live_migration_faulty(&cfg, plan).expect("stalled migration completes");
    assert_consistent(&out);
    assert_eq!(out.reconnects, 0);
    assert!(out.resume_owed.is_empty());
}
