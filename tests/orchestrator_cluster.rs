//! Orchestrator determinism and journal consistency tests.
//!
//! The cluster run is only trustworthy if (a) one seed pins *everything*
//! — two identical runs must journal byte-identical JSONL — and (b) the
//! journal agrees with the report's own accounting: per-migration phase
//! spans reconstructed from the event stream must reproduce each
//! record's total time and downtime exactly, in the same nanosecond
//! arithmetic.

use block_bitmap_migration::des::SimDuration;
use block_bitmap_migration::prelude::*;
use block_bitmap_migration::telemetry::{
    migration_ids, migration_phase_span_nanos, reconstruct_migration_phases, to_jsonl, Phase,
};

/// The acceptance geometry: 4 hosts, 8 VMs, IM-aware policy, seed 2008.
fn acceptance_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(4, 8);
    cfg.seed = 2008;
    cfg
}

fn traced_run(
    cfg: ClusterConfig,
) -> (
    ClusterReport,
    Vec<block_bitmap_migration::telemetry::Record>,
) {
    let scenario = Scenario::two_wave(&cfg, SimDuration::from_secs(30));
    let rec = Recorder::enabled();
    let mut orch =
        Orchestrator::new(cfg, Policy::ImAware, rec.clone()).expect("acceptance config is valid");
    let report = orch.run(&scenario);
    (report, rec.records())
}

/// Tentpole acceptance: the 4-host / 8-VM / seed-2008 run completes at
/// least 8 migrations (here: all 16 of the two-wave scenario), every
/// image verifies consistent, and the return wave is incremental.
#[test]
fn acceptance_run_completes_and_verifies() {
    let (report, records) = traced_run(acceptance_cfg());
    assert_eq!(report.records.len(), 16, "two waves of 8 VMs");
    assert_eq!(report.completed(), 16);
    assert!(report.completed() >= 8, "acceptance floor");
    assert_eq!(report.unserved, 0);
    assert!(report.all_consistent());
    assert_eq!(
        report.incremental(),
        8,
        "every return migration must land on its stale replica"
    );
    // Every admitted migration is visible in the journal.
    let ids = migration_ids(&records);
    assert_eq!(ids.len(), 16);
    assert_eq!(ids, (0..16).collect::<Vec<u64>>());
}

/// Satellite: seed determinism. Two runs with the same configuration
/// produce byte-identical JSONL journals and identical reports.
#[test]
fn same_seed_runs_journal_byte_identically() {
    let (report_a, records_a) = traced_run(acceptance_cfg());
    let (report_b, records_b) = traced_run(acceptance_cfg());
    assert_eq!(
        to_jsonl(&records_a),
        to_jsonl(&records_b),
        "same seed must journal byte-identically"
    );
    let json_a = serde_json::to_string(&report_a).expect("report serializes");
    let json_b = serde_json::to_string(&report_b).expect("report serializes");
    assert_eq!(json_a, json_b, "same seed must report identically");

    // A different seed must actually change the run (the determinism
    // above is not vacuous).
    let mut other = acceptance_cfg();
    other.seed = 2009;
    let (_, records_c) = traced_run(other);
    assert_ne!(to_jsonl(&records_a), to_jsonl(&records_c));
}

/// Satellite: telemetry invariant. For every migration, the journal's
/// phase spans reconstruct the record's total time and downtime
/// *exactly* — both sides compute over the same journaled nanosecond
/// instants.
#[test]
fn journal_spans_reconstruct_report_exactly() {
    let (report, records) = traced_run(acceptance_cfg());
    for r in &report.records {
        assert!(r.completed, "migration {} failed", r.migration);

        // Downtime is the Freeze span, to the nanosecond.
        let freeze = migration_phase_span_nanos(&records, r.migration, Phase::Freeze)
            .expect("freeze span journaled");
        assert_eq!(freeze, r.downtime_nanos, "migration {}", r.migration);

        // The four phases tile [start, finish] with no gaps: their spans
        // sum to the record's total exactly.
        let span = |p: Phase| {
            migration_phase_span_nanos(&records, r.migration, p)
                .unwrap_or_else(|| panic!("{p:?} span missing for migration {}", r.migration))
        };
        let total = span(Phase::DiskPrecopy)
            + span(Phase::MemPrecopy)
            + span(Phase::Freeze)
            + span(Phase::PostCopy);
        assert_eq!(
            total,
            r.finish_nanos - r.start_nanos,
            "migration {}",
            r.migration
        );

        // The derived-seconds view matches the record's own arithmetic.
        let phases = reconstruct_migration_phases(&records, r.migration);
        assert_eq!(phases.freeze_secs, r.downtime_nanos as f64 / 1e9);
        assert_eq!(
            phases.disk_precopy_secs,
            span(Phase::DiskPrecopy) as f64 / 1e9
        );
    }
}
