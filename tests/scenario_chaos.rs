//! Scenario-engine acceptance tests: identity, determinism, and the
//! rolling-maintenance chaos matrix.
//!
//! The scenario engine's core contract is that it is a *pure overlay*:
//! an empty scenario must reproduce the classic orchestrator run
//! byte-for-byte (same report, same JSONL journal), and any chaos
//! schedule must be a deterministic function of its seed. On top of
//! that sit the ISSUE's acceptance runs: an 8-host / 32-VM rolling
//! maintenance wave with a partition injected and healed mid-wave
//! completes block-exact consistent under every seed in the matrix,
//! and the cycle-aware policy beats the cycle-blind baseline on total
//! bytes in the E15 geometry.

use block_bitmap_migration::orchestrator::{MigrationRequest, VmId};
use block_bitmap_migration::prelude::*;
use block_bitmap_migration::scenario;
use block_bitmap_migration::telemetry::to_jsonl;

/// The shared small geometry: 4 hosts, 8 VMs, 32 MiB disks.
fn small_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(4, 8);
    spec.disk_blocks = Some(8_192);
    spec
}

/// A classic two-wave request stream expressed as scenario requests.
fn two_wave_requests(cfg: &ClusterConfig, gap: SimDuration) -> Vec<MigrationRequest> {
    Scenario::two_wave(cfg, gap).requests
}

/// Identity: a scenario with no islands, links, caps, cycles or events
/// runs the exact same simulation as the pre-scenario orchestrator —
/// the reports agree field by field and the telemetry journals are
/// byte-identical JSONL. This is what makes every pre-existing number
/// in the repo still trustworthy with the scenario engine in the loop.
#[test]
fn empty_scenario_reproduces_classic_journal_byte_for_byte() {
    let mut spec = small_spec();
    let cfg = scenario::config_for(&spec);
    let gap = SimDuration::from_secs(30);
    spec.requests = two_wave_requests(&cfg, gap);

    let classic_rec = Recorder::enabled();
    let mut classic = Orchestrator::new(cfg.clone(), Policy::ImAware, classic_rec.clone())
        .expect("classic config is valid");
    let classic_report = classic.run(&Scenario {
        requests: spec.requests.clone(),
    });

    let scn_rec = Recorder::enabled();
    let run = scenario::run_with_policy(&spec, Policy::ImAware, scn_rec.clone())
        .expect("empty scenario is valid");

    assert_eq!(
        classic_report.records.len(),
        run.report.records.len(),
        "same migrations admitted"
    );
    assert_eq!(classic_report.completed(), run.report.completed());
    assert_eq!(classic_report.total_bytes(), run.report.total_bytes());
    assert_eq!(classic_report.makespan_secs(), run.report.makespan_secs());
    assert_eq!(
        classic_report.aggregate_downtime_ms(),
        run.report.aggregate_downtime_ms()
    );
    let classic_journal = to_jsonl(&classic_rec.records());
    let scenario_journal = to_jsonl(&scn_rec.records());
    assert!(!classic_journal.is_empty(), "classic run journaled events");
    assert_eq!(
        classic_journal, scenario_journal,
        "empty scenario must journal byte-identically to the classic run"
    );
}

/// A mid-wave chaos spec on the small geometry: every VM migrates at
/// t = 0, the fleet partitions into two islands five seconds in
/// (stranding cross-island streams), and heals at t = 35 s.
fn partition_chaos_spec(seed: u64) -> ScenarioSpec {
    let mut spec = small_spec();
    spec.seed = Some(seed);
    spec.islands.push(scenario::Island {
        name: "LEFT".to_string(),
        hosts: vec![0, 1],
    });
    spec.islands.push(scenario::Island {
        name: "RIGHT".to_string(),
        hosts: vec![2, 3],
    });
    for vm in 0..spec.vms {
        spec.requests.push(MigrationRequest {
            vm: VmId(vm),
            dest: None,
            at: SimTime::ZERO,
        });
    }
    spec.events.push(TimedEvent {
        at: SimTime::ZERO + SimDuration::from_secs(5),
        event: ChaosEvent::Partition {
            islands: vec![vec![0, 1], vec![2, 3]],
        },
    });
    spec.events.push(TimedEvent {
        at: SimTime::ZERO + SimDuration::from_secs(35),
        event: ChaosEvent::Heal,
    });
    spec
}

/// Determinism: one seed pins the whole chaos run. Two executions of
/// the same partition-mid-wave spec journal byte-identical JSONL and
/// produce identical reports, and the journal actually contains the
/// partition lifecycle (this is chaos, not a quiet run).
#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let mut journals = Vec::new();
    let mut totals = Vec::new();
    for _ in 0..2 {
        let rec = Recorder::enabled();
        let run = scenario::run_with_policy(&partition_chaos_spec(7), Policy::ImAware, rec.clone())
            .expect("partition spec is valid");
        journals.push(to_jsonl(&rec.records()));
        totals.push((
            run.report.completed(),
            run.report.total_bytes(),
            run.report.makespan_secs().to_bits(),
        ));
    }
    assert_eq!(
        journals[0], journals[1],
        "same seed must replay the chaos schedule byte-identically"
    );
    assert_eq!(totals[0], totals[1]);
    assert!(
        journals[0].contains("\"partition_started\"") || journals[0].contains("PartitionStarted"),
        "chaos journal must show the partition starting"
    );
    assert!(
        journals[0].contains("\"partition_healed\"") || journals[0].contains("PartitionHealed"),
        "chaos journal must show the partition healing"
    );
}

/// The ISSUE acceptance spec: 8 hosts x 32 VMs, a rolling maintenance
/// wave over every host (10 s dwell each), and a fleet partition
/// injected 20 s in — mid-wave, while evacuations are in flight — and
/// healed 40 s later.
fn rolling_maintenance_spec(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(8, 32);
    spec.disk_blocks = Some(8_192);
    spec.seed = Some(seed);
    spec.events.push(TimedEvent {
        at: SimTime::ZERO,
        event: ChaosEvent::Maintenance {
            hosts: (0..8).collect(),
            dwell: SimDuration::from_secs(10),
        },
    });
    spec.events.push(TimedEvent {
        at: SimTime::ZERO + SimDuration::from_secs(20),
        event: ChaosEvent::Partition {
            islands: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        },
    });
    spec.events.push(TimedEvent {
        at: SimTime::ZERO + SimDuration::from_secs(60),
        event: ChaosEvent::Heal,
    });
    spec
}

/// Acceptance: the rolling-maintenance chaos run completes block-exact
/// consistent with bounded makespan under every seed in the matrix.
/// Every evacuation the wave injects finishes, every verified image is
/// byte-identical to its source, and the whole schedule (including the
/// stall while partitioned) lands well inside the orchestrator horizon.
#[test]
fn rolling_maintenance_with_midwave_partition_acceptance_matrix() {
    for seed in [1u64, 2, 3] {
        let spec = rolling_maintenance_spec(seed);
        let horizon_secs = scenario::config_for(&spec).horizon.as_nanos() as f64 / 1e9;
        let run = scenario::run_with_policy(&spec, Policy::ImAware, Recorder::off())
            .expect("maintenance spec is valid");
        let report = run.report;
        assert!(
            !report.records.is_empty(),
            "seed {seed}: maintenance wave must inject evacuations"
        );
        assert_eq!(
            report.completed(),
            report.records.len(),
            "seed {seed}: every evacuation completes"
        );
        assert_eq!(report.unserved, 0, "seed {seed}: no unserved requests");
        assert!(
            report.all_consistent(),
            "seed {seed}: every migrated image must verify block-exact"
        );
        assert!(
            report.makespan_secs() < horizon_secs,
            "seed {seed}: makespan {}s must stay inside the {horizon_secs}s horizon",
            report.makespan_secs()
        );
    }
}

/// E15 headline: on the bench-suite chaos geometry (8 hosts x 32 VMs,
/// 20 s high / 40 s low workload cycles, 25 MiB/s maintenance NICs),
/// cycle-aware scheduling ships strictly fewer total bytes than the
/// cycle-blind IM-aware baseline, because deferred evacuations run
/// against the thinned low-phase dirty rate.
#[test]
fn cycle_aware_beats_cycle_blind_on_total_bytes() {
    let spec = bench_suite::experiments::chaos::spec(bench_suite::Scale::Ci, 2008);
    let blind = scenario::run_with_policy(&spec, Policy::ImAware, Recorder::off())
        .expect("chaos bench spec is valid")
        .report;
    let aware = scenario::run_with_policy(&spec, Policy::CycleAware, Recorder::off())
        .expect("chaos bench spec is valid")
        .report;
    assert_eq!(blind.completed(), blind.records.len());
    assert_eq!(aware.completed(), aware.records.len());
    assert!(blind.all_consistent() && aware.all_consistent());
    assert!(
        aware.total_bytes() < blind.total_bytes(),
        "cycle-aware must ship fewer bytes: {} vs {}",
        aware.total_bytes(),
        blind.total_bytes()
    );
}

/// The checked-in `.scn` files are live documentation: each one must
/// parse, validate, and run to a fully consistent completion. This is
/// the same set `scripts/ci.sh` smokes across its seed matrix.
#[test]
fn checked_in_scenario_files_parse_and_run() {
    for name in ["partition.scn", "wan.scn", "maintenance.scn"] {
        let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let mut spec = scenario::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if spec.seed.is_none() {
            spec.seed = Some(1);
        }
        let policy = spec.policy.unwrap_or(Policy::ImAware);
        let run = scenario::run_with_policy(&spec, policy, Recorder::off())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            run.report.completed(),
            run.report.records.len(),
            "{name}: every migration completes"
        );
        assert!(run.report.all_consistent(), "{name}: block-exact images");
    }
}
