//! Cross-crate integration: the simulated TPM/IM engines must produce a
//! consistent destination under *any* workload, seed, bitmap kind and
//! (sane) geometry — the paper's §III "Consistency" requirement as a
//! property.

use block_bitmap_migration::prelude::*;
use proptest::prelude::*;

fn tiny_cfg(
    disk_blocks: usize,
    mem_pages: usize,
    seed: u64,
    bitmap: BitmapKind,
) -> MigrationConfig {
    MigrationConfig {
        disk_blocks,
        mem_pages,
        bitmap,
        seed,
        disk_dirty_threshold: 32,
        mem_dirty_threshold: 64,
        step: SimDuration::from_millis(100),
        ..MigrationConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TPM leaves the destination equal to the source (modulo post-resume
    /// writes, which the engine verifies internally) for every workload,
    /// seed and bitmap kind.
    #[test]
    fn tpm_always_consistent(
        seed in 0u64..1_000,
        kind_idx in 0usize..5,
        layered in proptest::bool::ANY,
        disk_kb in 32_768usize..200_000,
    ) {
        let kind = WorkloadKind::ALL[kind_idx];
        let bitmap = if layered { BitmapKind::Layered } else { BitmapKind::Flat };
        let cfg = tiny_cfg(disk_kb / 4, 4_096, seed, bitmap);
        let out = run_tpm(cfg, kind);
        prop_assert!(out.report.consistent, "inconsistent: {}", out.report.summary());
        prop_assert_eq!(out.report.residual_blocks, 0);
        // Downtime is bounded: the point of live migration.
        prop_assert!(out.report.downtime_ms < 2_000.0);
        // The full disk crossed at least once.
        prop_assert!(out.report.disk_iterations[0].units_sent as usize == disk_kb / 4);
    }

    /// A TPM → dwell → IM round trip is consistent and IM moves less
    /// disk data than the primary.
    #[test]
    fn im_roundtrip_consistent_and_cheaper(
        seed in 0u64..1_000,
        kind_idx in 0usize..3,
        dwell_secs in 5u64..60,
    ) {
        let kind = WorkloadKind::TABLE1[kind_idx];
        let cfg = tiny_cfg(32_768, 4_096, seed, BitmapKind::Flat);
        let mut out = run_tpm(cfg.clone(), kind);
        let primary_disk = out.report.ledger.disk_total();
        dwell(&mut out, &cfg, SimDuration::from_secs(dwell_secs));
        let back = run_im(cfg, out);
        prop_assert!(back.report.consistent, "IM inconsistent: {}", back.report.summary());
        prop_assert!(
            back.report.ledger.disk_total() < primary_disk,
            "IM moved {} vs primary {}",
            back.report.ledger.disk_total(),
            primary_disk
        );
    }

    /// The engine is fully deterministic: identical configs give
    /// bit-identical reports; the bitmap kind never changes the outcome,
    /// only its cost.
    #[test]
    fn deterministic_and_bitmap_kind_invariant(seed in 0u64..500, kind_idx in 0usize..3) {
        let kind = WorkloadKind::TABLE1[kind_idx];
        let a = run_tpm(tiny_cfg(16_384, 2_048, seed, BitmapKind::Flat), kind);
        let b = run_tpm(tiny_cfg(16_384, 2_048, seed, BitmapKind::Flat), kind);
        let c = run_tpm(tiny_cfg(16_384, 2_048, seed, BitmapKind::Layered), kind);
        prop_assert_eq!(a.report.ledger.clone(), b.report.ledger.clone());
        prop_assert_eq!(a.report.downtime_ms.to_bits(), b.report.downtime_ms.to_bits());
        prop_assert_eq!(a.report.ledger, c.report.ledger);
        prop_assert_eq!(
            a.report.total_time_secs.to_bits(),
            c.report.total_time_secs.to_bits()
        );
    }
}

/// Pinned regression from `sim_consistency.proptest-regressions`
/// (seed = 0, kind_idx = 0, layered = false, disk_kb = 64000): the web
/// workload used to panic on disks under 64 MiB because of an
/// over-conservative size floor, and the property's `disk_kb` range had
/// been narrowed to dodge it instead of fixing the floor. The stub
/// proptest runner does not replay regression files, so the input is
/// pinned here explicitly.
#[test]
fn tpm_consistent_on_62mib_disk_regression() {
    let kind = WorkloadKind::ALL[0];
    let disk_kb = 64_000usize;
    let cfg = tiny_cfg(disk_kb / 4, 4_096, 0, BitmapKind::Flat);
    let out = run_tpm(cfg, kind);
    assert!(
        out.report.consistent,
        "inconsistent: {}",
        out.report.summary()
    );
    assert_eq!(out.report.residual_blocks, 0);
    assert!(out.report.downtime_ms < 2_000.0);
    assert_eq!(
        out.report.disk_iterations[0].units_sent as usize,
        disk_kb / 4
    );
}

#[test]
fn back_to_back_im_stays_consistent() {
    // Three consecutive round trips (the telecommute pattern).
    let cfg = tiny_cfg(32_768, 2_048, 7, BitmapKind::Layered);
    let mut out = run_tpm(cfg.clone(), WorkloadKind::Web);
    assert!(out.report.consistent);
    for _ in 0..3 {
        dwell(&mut out, &cfg, SimDuration::from_secs(20));
        out = run_im(cfg.clone(), out);
        assert!(out.report.consistent);
        assert_eq!(out.report.scheme, "im");
    }
}

#[test]
fn rate_limited_migration_still_consistent() {
    let cfg = MigrationConfig {
        rate_limit: Some(2.0 * 1024.0 * 1024.0),
        ..tiny_cfg(16_384, 2_048, 3, BitmapKind::Flat)
    };
    let out = run_tpm(cfg, WorkloadKind::Video);
    assert!(out.report.consistent);
}
