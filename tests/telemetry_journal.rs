//! Telemetry journal consistency tests.
//!
//! The journal is only trustworthy if it agrees with the engines' own
//! accounting: phase timings reconstructed from span events must equal
//! the `MigrationReport` (simulated) / `LiveOutcome` (live) numbers, and
//! the event stream must respect the §III-A cancellation ordering — once
//! a destination write cancels synchronization for a block, that block
//! must never again arrive as a push or a pull.

use block_bitmap_migration::migrate::live::{run_live_migration, LiveConfig};
use block_bitmap_migration::migrate::sim::run_tpm_traced;
use block_bitmap_migration::prelude::*;
use block_bitmap_migration::telemetry::{
    from_jsonl, phase_span_nanos, reconstruct_phases, to_jsonl, Event, Phase,
};

/// Satellite: the report's phase timings and the journal are two views of
/// one accounting. Reconstructing `PhaseDurations` from the journal's
/// span events must reproduce `MigrationReport.phases` *exactly* (f64
/// equality, not approximate): both sides compute
/// `(end_nanos - start_nanos) as f64 / 1e9` over the same instants.
#[test]
fn sim_journal_reconstructs_report_phases_exactly() {
    let rec = Recorder::enabled();
    let out = run_tpm_traced(MigrationConfig::small(), WorkloadKind::Web, rec.clone());
    assert!(out.report.consistent);

    // The journal must survive a serde round-trip bit for bit.
    let records = rec.records();
    assert!(!records.is_empty(), "traced run recorded nothing");
    let back = from_jsonl(&to_jsonl(&records)).expect("journal parses back");
    assert_eq!(back, records, "JSONL round-trip altered the journal");

    let phases = reconstruct_phases(&back);
    let report = &out.report.phases;
    assert_eq!(phases.disk_precopy_secs, report.disk_precopy_secs);
    assert_eq!(phases.mem_precopy_secs, report.mem_precopy_secs);
    assert_eq!(phases.freeze_secs, report.freeze_secs);
    assert_eq!(phases.postcopy_secs, report.postcopy_secs);

    // Per-iteration journal entries mirror the report's iteration tables.
    let disk_iters: Vec<u64> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::Iteration {
                resource: block_bitmap_migration::telemetry::Resource::Disk,
                units_sent,
                ..
            } => Some(*units_sent),
            _ => None,
        })
        .collect();
    let report_iters: Vec<u64> = out
        .report
        .disk_iterations
        .iter()
        .map(|i| i.units_sent)
        .collect();
    assert_eq!(disk_iters, report_iters);
}

/// Satellite (§III-A ordering): a destination write cancels
/// synchronization for its block; after the `SyncCancelled` event no
/// transfer event (`BlockPushed` / `BlockPulled`) for that block may
/// appear — a superseded in-flight copy must journal as `BlockDropped`.
#[test]
fn sim_journal_cancellation_precedes_no_transfer() {
    let rec = Recorder::enabled();
    let cfg = MigrationConfig {
        // Slow wire: plenty of dirty blocks survive into post-copy, so
        // the resumed diabolical guest demonstrably overwrites some of
        // them before they arrive.
        rate_limit: Some(24.0 * 1024.0 * 1024.0),
        ..MigrationConfig::small()
    };
    let out = run_tpm_traced(cfg, WorkloadKind::Diabolical, rec.clone());
    assert!(out.report.consistent);

    let records = rec.records();
    let mut cancelled = std::collections::HashSet::new();
    let mut cancellations = 0u64;
    for r in &records {
        match &r.event {
            Event::SyncCancelled { block } => {
                cancelled.insert(*block);
                cancellations += 1;
            }
            Event::BlockPushed { block } | Event::BlockPulled { block } => {
                assert!(
                    !cancelled.contains(block),
                    "block {block} transferred after its sync was cancelled \
                     (seq {})",
                    r.seq
                );
            }
            _ => {}
        }
    }
    assert!(
        cancellations > 0,
        "the diabolical run must cancel at least one synchronization"
    );
}

/// Live satellite: the journal's freeze span *is* the measured downtime.
/// Source and destination stamp the freeze boundary events at the exact
/// suspend/resume instants against a shared epoch, so the reconstructed
/// span equals `LiveOutcome::downtime` to the nanosecond.
#[test]
fn live_journal_freeze_span_equals_downtime() {
    let cfg = LiveConfig {
        num_blocks: 16_384,
        telemetry: Recorder::enabled(),
        seed: 41,
        ..LiveConfig::test_default()
    };
    let out = run_live_migration(&cfg).expect("migration completes");
    assert_eq!(out.read_violations, 0);

    let records = cfg.telemetry.records();
    let back = from_jsonl(&to_jsonl(&records)).expect("journal parses back");
    assert_eq!(back, records);

    let freeze = phase_span_nanos(&back, Phase::Freeze).expect("freeze span recorded");
    assert_eq!(
        u128::from(freeze),
        out.downtime.as_nanos(),
        "journal freeze span must equal the engine's measured downtime"
    );

    // Every phase ran and is visible in the journal.
    for phase in [Phase::DiskPrecopy, Phase::MemPrecopy, Phase::PostCopy] {
        assert!(
            phase_span_nanos(&back, phase).is_some(),
            "{phase:?} span missing from journal"
        );
    }

    // A clean transport journals no incidents.
    assert!(!back.iter().any(|r| matches!(
        r.event,
        Event::Reconnect { .. } | Event::FaultInjected { .. }
    )));

    // Post-copy block events account for the engine's own counts.
    let (mut pushed, mut pulled, mut dropped) = (0u64, 0u64, 0u64);
    for r in &back {
        match r.event {
            Event::BlockPushed { .. } => pushed += 1,
            Event::BlockPulled { .. } => pulled += 1,
            Event::BlockDropped { .. } => dropped += 1,
            _ => {}
        }
    }
    assert_eq!(pushed, out.pushed);
    assert_eq!(pulled, out.pulled);
    assert_eq!(dropped, out.dropped);
}

/// PR-7 acceptance: the content-aware data plane is deterministic end to
/// end. Two template-clone migrations under the same seed must produce
/// byte-identical JSONL journals and byte-identical destination images,
/// while still showing the dedup wire savings against a dedup-off run.
#[test]
fn template_dedup_same_seed_journals_byte_identically() {
    use block_bitmap_migration::migrate::sim::run_template_clone_tpm_traced;

    let cfg = MigrationConfig {
        dedup: true,
        compress: true,
        ..MigrationConfig::small()
    };
    // ~8% divergence, the benchmark scenario's shape.
    let diverged = {
        let mut d = FlatBitmap::new(cfg.disk_blocks);
        for b in (0..cfg.disk_blocks).step_by(12) {
            d.set(b);
        }
        d
    };

    let run = || {
        let rec = Recorder::enabled();
        let out = run_template_clone_tpm_traced(
            cfg.clone(),
            WorkloadKind::Idle,
            diverged.clone(),
            rec.clone(),
        );
        assert!(out.report.consistent);
        (to_jsonl(&rec.records()), out)
    };
    let (journal_a, out_a) = run();
    let (journal_b, out_b) = run();

    assert!(!journal_a.is_empty(), "traced run recorded nothing");
    assert_eq!(
        journal_a, journal_b,
        "same seed must journal byte-identically with dedup on"
    );
    assert!(
        out_a.dst_disk.content_equals(&out_b.dst_disk),
        "same seed must converge to byte-identical destination images"
    );

    // The journaled runs still realize the content-aware savings: most of
    // the clone is shipped as 16-byte references, not payloads.
    let off = block_bitmap_migration::migrate::sim::run_template_clone_tpm(
        MigrationConfig {
            dedup: false,
            compress: false,
            ..cfg.clone()
        },
        WorkloadKind::Idle,
        diverged,
    );
    assert!(out_a.dst_disk.content_equals(&off.dst_disk));
    let reduction =
        100.0 * (1.0 - out_a.report.wire.bytes_sent as f64 / off.report.wire.bytes_sent as f64);
    assert!(
        reduction >= 60.0,
        "template-clone dedup must cut >=60% of wire bytes (got {reduction:.1}%)"
    );
}

/// PR-9 acceptance: the multi-source data plane is deterministic end to
/// end. Two template-clone *fan-in* migrations under the same seed must
/// produce byte-identical JSONL journals (the fetch plan, the per-peer
/// streams, and every telemetry record replay exactly), and with no
/// peers the multisource knob must be invisible — journals byte-identical
/// on and off.
#[test]
fn multisource_fanin_same_seed_journals_byte_identically() {
    use block_bitmap_migration::migrate::sim::run_template_clone_fanin_traced;

    let cfg = MigrationConfig::small();
    // The E14 shape: ~8% divergence since the template boot, four fleet
    // peers still holding the golden image.
    let diverged = {
        let mut d = FlatBitmap::new(cfg.disk_blocks);
        for b in (0..cfg.disk_blocks).step_by(12) {
            d.set(b);
        }
        d
    };

    let run = || {
        let rec = Recorder::enabled();
        let out = run_template_clone_fanin_traced(
            cfg.clone(),
            WorkloadKind::Idle,
            diverged.clone(),
            4,
            rec.clone(),
        );
        assert!(out.report.consistent);
        (to_jsonl(&rec.records()), out)
    };
    let (journal_a, out_a) = run();
    let (journal_b, out_b) = run();

    assert!(!journal_a.is_empty(), "traced run recorded nothing");
    assert_eq!(
        journal_a, journal_b,
        "same seed must journal byte-identically with multi-source fetch on"
    );
    assert!(
        out_a.dst_disk.content_equals(&out_b.dst_disk),
        "same seed must converge to byte-identical destination images"
    );
    // The journaled runs actually exercised the fan-in: most owed full
    // blocks arrived from the four peers, and the journal says so.
    assert!(
        out_a.report.multisource.peer_fraction() >= 0.70,
        "peer fraction {:.3} below the E14 bar",
        out_a.report.multisource.peer_fraction()
    );
    let records = from_jsonl(&journal_a).expect("journal parses back");
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, Event::PeerFetch { .. })),
        "fan-in run must journal peer fetches"
    );

    // With no peer holders the knob is invisible: a classic two-host run
    // journals byte-identically whether multisource is on or off (the
    // PR-7 bit-identity contract carried forward).
    let classic = |multisource: bool| {
        let rec = Recorder::enabled();
        let out = run_tpm_traced(
            MigrationConfig {
                multisource,
                ..MigrationConfig::small()
            },
            WorkloadKind::Web,
            rec.clone(),
        );
        assert!(out.report.consistent);
        to_jsonl(&rec.records())
    };
    assert_eq!(
        classic(true),
        classic(false),
        "with no peers, --no-multisource must reproduce the classic journal byte for byte"
    );
}
