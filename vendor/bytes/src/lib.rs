//! Offline stand-in for `bytes`: an immutable, cheaply cloneable byte
//! buffer backed by `Arc<[u8]>`. Only the surface this workspace uses.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of bytes.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A sub-buffer over `range` (copies; the real crate shares).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self {
            data: v.as_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "… {} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_copies_range() {
        let b = Bytes::copy_from_slice(&[9, 8, 7, 6]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![8u8, 7]));
    }
}
