//! Offline stand-in for `criterion`: same macro and builder surface the
//! workspace benches use, backed by a minimal wall-clock timing loop that
//! prints one line per benchmark instead of criterion's full statistics.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the configured iteration count, timing the whole batch.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Final-report hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Record the work performed per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up / calibration pass: find an iteration count that takes a
    // measurable slice of time without dragging the whole suite out.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    let samples = sample_size.clamp(1, 20);
    let mut best = per_iter;
    for _ in 1..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let t = b.elapsed.as_secs_f64() / iters as f64;
        if t < best {
            best = t;
        }
    }
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {:.1} MiB/s", n as f64 / best / (1 << 20) as f64),
        Some(Throughput::Elements(n)) => format!("  {:.1} elem/s", n as f64 / best),
        None => String::new(),
    };
    println!("bench {label:<50} {:>12.1} ns/iter{rate}", best * 1e9);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        let mut hits = 0u64;
        g.bench_function("count", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
