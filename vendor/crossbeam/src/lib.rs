//! Offline stand-in for `crossbeam`, providing the `channel` module subset
//! this workspace uses: unbounded MPMC channels whose `Sender` and
//! `Receiver` are both `Clone + Send + Sync`, with the same error types as
//! the real crate.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message.
        Timeout,
        /// Every sender disconnected and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is queued right now.
        Empty,
        /// Every sender disconnected and the queue is empty.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queue a message; fails only when every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = match self.shared.ready.wait(state) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _r) = match self.shared.ready.wait_timeout(state, deadline - now) {
                    Ok(x) => x,
                    Err(p) => p.into_inner(),
                };
                state = g;
            }
        }

        /// Pop a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            if let Some(v) = state.items.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_sees_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receiver() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let t = std::thread::spawn(move || tx.send(9).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(9));
            t.join().unwrap();
        }

        #[test]
        fn cross_thread_drain() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
