//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! with parking_lot's poison-free API surface (the subset this workspace
//! uses: `Mutex`, `RwLock`, `Condvar`).

use std::sync::{self, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so condvar waits can move it out
/// and back without unsafe code; it is `None` only transiently inside
/// [`Condvar`] methods.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = match self.inner.wait_timeout(g, timeout) {
                Ok(x) => x,
                Err(p) => p.into_inner(),
            };
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Move the std guard out of our wrapper, run `f` on it, put it back.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(StdMutexGuard<'a, T>) -> StdMutexGuard<'a, T>,
) {
    let inner = guard
        .inner
        .take()
        .expect("guard present outside condvar wait");
    guard.inner = Some(f(inner));
}

/// A reader-writer lock whose guards never expose poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        assert_eq!(*g, 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u64);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
