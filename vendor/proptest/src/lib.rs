//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range / tuple / `Just` / collection / option / bool / `any`
//! strategies, `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` and
//! `ProptestConfig::with_cases`.
//!
//! Cases are generated from a fixed-seed deterministic RNG, so every run
//! explores the same inputs; there is no shrinking and no persistence.
//! Regression inputs from `proptest-regressions` files are instead pinned
//! as explicit `#[test]`s next to the property.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator used for all case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the `proptest!` runner derives one per case.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Combinator and helper strategies.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen(rng)
        }
    }

    /// Build a [`Union`]; panics on an empty arm list.
    pub fn union<T>(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }

    /// Erase a strategy's concrete type for [`union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        // Hit the endpoints occasionally; they are the interesting cases.
        match rng.below(32) {
            0 => *self.start(),
            1 => *self.end(),
            _ => self.start() + rng.unit_f64() * (self.end() - self.start()),
        }
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)
            ;
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// That strategy's type.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn gen(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

/// `proptest::bool::ANY`.
pub mod bool {
    /// The strategy yielding both booleans.
    pub const ANY: super::AnyPrimitive<::core::primitive::bool> = super::AnyPrimitive {
        _marker: std::marker::PhantomData,
    };
}

// ---------------------------------------------------------------------------
// Collections / option
// ---------------------------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with sizes from the given range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `element`; duplicates may make the set
    /// smaller than the drawn target, matching the real crate.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.gen(rng));
            }
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Filter out cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each test item in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __accepted: u32 = 0;
            let mut __attempt: u64 = 0;
            let __max_attempts: u64 = (__config.cases as u64) * 16 + 64;
            while __accepted < __config.cases && __attempt < __max_attempts {
                let mut __rng = $crate::TestRng::new(0xB10C_B17A_u64 ^ (__attempt << 1));
                __attempt += 1;
                $(
                    let $arg = $crate::Strategy::gen(&($strat), &mut __rng);
                )*
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));
                    )*
                    s
                };
                let __result: Result<(), $crate::TestCaseError> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __result {
                    Ok(()) => __accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {} failed: {}\ninputs:\n{}",
                        __attempt - 1, msg, __inputs
                    ),
                }
            }
            assert!(
                __accepted > 0,
                "proptest: every generated case was rejected by prop_assume!"
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::gen(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::gen(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn determinism() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::new(7);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::new(7);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn collections_and_oneof() {
        let strat = prop::collection::vec(
            prop_oneof![(0usize..10).prop_map(|v| v * 2), Just(1usize)],
            0..50,
        );
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = Strategy::gen(&strat, &mut rng);
            assert!(v.len() < 50);
            assert!(v.iter().all(|&x| x == 1 || (x % 2 == 0 && x < 20)));
        }
        let set = prop::collection::btree_set(0usize..100, 5..10);
        let s = Strategy::gen(&set, &mut rng);
        assert!(s.len() < 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself works end to end.
        #[test]
        fn macro_roundtrip(a in 0u64..100, b in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(b.len(), b.clone().len());
        }
    }
}
