//! Offline stand-in for `rand`. The workspace declares the dependency but
//! uses its own deterministic `des::SimRng`; this empty crate satisfies
//! resolution without network access.
