//! Offline stand-in for `serde`.
//!
//! Instead of the real crate's serializer/deserializer visitor machinery,
//! values convert to and from a single [`Content`] tree — sufficient for
//! the derive shapes and the JSON front-end this workspace uses, and tiny
//! enough to audit. The derive macro (feature `derive`, crate
//! `serde_derive`) generates `to_content` / `from_content` pairs.

/// The self-describing data model every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / Rust `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0`; non-negative values use `U64`).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a `Map`.
    pub fn get_field(&self, name: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Convert `self` into the [`Content`] data model.
pub trait Serialize {
    /// Produce the content tree for this value.
    fn to_content(&self) -> Content;
}

/// Rebuild `Self` from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Parse the content tree into a value.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Marker alias matching serde's owned-deserialize bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| {
                        DeError::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i64 = match content {
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        DeError::custom(format!("integer {v} overflows i64"))
                    })?,
                    Content::I64(v) => *v,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

// ---------------------------------------------------------------------------
// Support for derive-generated code
// ---------------------------------------------------------------------------

/// Runtime helpers called by the code `serde_derive` generates. Not part
/// of the public API contract.
pub mod __private {
    use super::{Content, DeError, Deserialize};

    /// Deserialize one named struct (or struct-variant) field, treating a
    /// missing key as `Null` so `Option` fields default to `None`.
    pub fn field<T: Deserialize>(map: &Content, name: &str) -> Result<T, DeError> {
        match map.get_field(name) {
            Some(v) => {
                T::from_content(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
            }
            None => T::from_content(&Content::Null)
                .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
        }
    }

    /// Error for content that matches no enum variant.
    pub fn unknown_variant(type_name: &str, got: &Content) -> DeError {
        DeError::custom(format!(
            "unknown {type_name} variant: {:?}",
            match got {
                Content::Str(s) => s.clone(),
                Content::Map(m) => m
                    .first()
                    .map(|(k, _)| k.clone())
                    .unwrap_or_else(|| "<empty map>".into()),
                other => format!("<{}>", other.kind()),
            }
        ))
    }

    /// Require a `Map` content node (struct deserialization).
    pub fn as_map<'c>(type_name: &str, content: &'c Content) -> Result<&'c Content, DeError> {
        match content {
            Content::Map(_) => Ok(content),
            other => Err(DeError::custom(format!(
                "expected map for {type_name}, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(
            String::from_content(&"hi".to_content()),
            Ok("hi".to_string())
        );
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()), Ok(v));
        let some: Option<u8> = Some(9);
        assert_eq!(Option::<u8>::from_content(&some.to_content()), Ok(some));
        assert_eq!(Option::<u8>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    fn missing_optional_field_is_none() {
        let map = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert_eq!(__private::field::<Option<u8>>(&map, "b"), Ok(None));
        assert!(__private::field::<u8>(&map, "b").is_err());
        assert_eq!(__private::field::<u8>(&map, "a"), Ok(1));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }
}
