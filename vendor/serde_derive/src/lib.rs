//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! stub crate's [`Content`] data model. Parsing is a hand-rolled walk over
//! `proc_macro` token trees (no `syn`/`quote`, which are unavailable
//! offline), so only the shapes this workspace uses are supported:
//!
//! - structs with named fields
//! - single-field tuple structs (serialized transparently, like newtypes)
//! - enums of unit variants (string representation)
//! - enums of struct variants (externally tagged maps)
//!
//! Generics, `#[serde(...)]` attributes, and tuple variants are rejected
//! with a compile-time panic naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    /// `struct Name { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T);`
    NewtypeStruct { name: String },
    /// `enum Name { Unit, Struct { a: T } }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

/// Derive `serde::Serialize` via the `Content` data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),")
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let entries = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), \
                                     ::serde::Serialize::to_content({f})),"
                                )
                            })
                            .collect::<String>();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![\
                                 (\"{v}\".to_string(), \
                                  ::serde::Content::Map(vec![{entries}]))]),",
                            v = v.name
                        )
                    }
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("derived Serialize impl parses")
}

/// Derive `serde::Deserialize` via the `Content` data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(m, \"{f}\")?,"))
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> Result<Self, ::serde::DeError> {{\n\
                         let m = ::serde::__private::as_map(\"{name}\", content)?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) \
                     -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_content(content)?))\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),", v = v.name))
                .collect::<String>();
            let map_arms = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|f| (v, f)))
                .map(|(v, fields)| {
                    let inits = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::__private::field(v, \"{f}\")?,"))
                        .collect::<String>();
                    format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),", vn = v.name)
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 _ => Err(::serde::__private::unknown_variant(\
                                          \"{name}\", content)),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (k, v) = &entries[0];\n\
                                 let _ = v;\n\
                                 match k.as_str() {{\n\
                                     {map_arms}\n\
                                     _ => Err(::serde::__private::unknown_variant(\
                                              \"{name}\", content)),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::__private::unknown_variant(\
                                      \"{name}\", content)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i, "struct/enum keyword");
    let name = expect_ident(&tokens, &mut i, "type name");
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "serde stub derive: tuple struct `{name}` has {arity} fields; \
                         only single-field newtypes are supported"
                    );
                }
                Item::NewtypeStruct { name }
            }
            other => panic!("serde stub derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                variants: parse_variants(&name, g.stream()),
                name,
            },
            other => panic!("serde stub derive: unexpected token after `enum {name}`: {other:?}"),
        },
        kw => panic!("serde stub derive: cannot derive for `{kw} {name}` (unions unsupported)"),
    }
}

/// Advance past `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1; // the [...] group
                } else {
                    panic!("serde stub derive: stray `#` outside an attribute");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected {what}, found {other:?}"),
    }
}

/// Field names of a `{ a: T, b: U }` body; types are skipped (the generated
/// code relies on inference through `Deserialize`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i, "field name");
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde stub derive: expected `:` after field `{field}`, found {other:?}")
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Skip one type expression up to a top-level `,` (commas inside `<...>`,
/// and any bracketed group, do not count).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        // Delimited groups ((), [], {}) nest their own commas safely.
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1; // consume the separator
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count the fields of a tuple-struct body by top-level commas.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        arity += 1;
    }
    arity
}

fn parse_variants(enum_name: &str, stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde stub derive: tuple variant `{enum_name}::{name}` is not supported");
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!(
                "serde stub derive: explicit discriminant on `{enum_name}::{name}` \
                 is not supported"
            );
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
