//! Offline stand-in for `serde_json`, backed by the stub `serde` crate's
//! [`Content`] data model: a `Value` tree, a recursive-descent JSON text
//! parser, compact and pretty printers, and the `json!` construction macro
//! (string-literal keys, expression values — the subset this workspace
//! uses).

use serde::{Content, Deserialize, Serialize};

/// A JSON number: distinguishes integers from floats like the real crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fraction or exponent.
    Float(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` when this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Content <-> Value
// ---------------------------------------------------------------------------

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(v) => Value::Number(Number::PosInt(*v)),
        Content::I64(v) => Value::Number(Number::NegInt(*v)),
        Content::F64(v) => Value::Number(Number::Float(*v)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::PosInt(n)) => Content::U64(*n),
        Value::Number(Number::NegInt(n)) => Content::I64(*n),
        Value::Number(Number::Float(n)) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(entries) => Content::Map(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(content))
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    content_to_value(&value.to_content())
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&to_value(value), &mut out);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&to_value(value), &mut out, 0);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if !v.is_finite() {
                // JSON has no NaN/Inf; the real crate refuses these at the
                // serializer level. Emitting null keeps output well-formed.
                out.push_str("null");
            } else if v == v.trunc() && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_content(&value_to_content(&value)).map_err(|e| Error::new(e.to_string()))
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are unsupported (unused here).
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| Error::new("empty char"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            let mag: i64 = stripped
                .parse::<i64>()
                .map_err(|_| Error::new(format!("integer out of range: {text}")))?;
            return Ok(Value::Number(Number::NegInt(-mag)));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::Float(v)))
        .map_err(|_| Error::new(format!("invalid number: {text}")))
}

/// Build a [`Value`] in place. Supports the workspace's usage: object
/// literals with string-literal keys, nested object/array literals,
/// expression values, `null`, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {
        $crate::Value::Object($crate::__json_object!([] $($body)*))
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for `json!` object bodies: accumulates finished
/// `(key, value)` pairs while peeling one pair per step, dispatching on
/// whether the value is a nested `{...}` / `[...]` literal or a plain
/// expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ([$($done:expr,)*]) => { vec![$($done,)*] };
    ([$($done:expr,)*] $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::__json_object!(
            [$($done,)* ($key.to_string(), $crate::json!({ $($inner)* })),]
            $($rest)*
        )
    };
    ([$($done:expr,)*] $key:literal : { $($inner:tt)* }) => {
        $crate::__json_object!(
            [$($done,)* ($key.to_string(), $crate::json!({ $($inner)* })),]
        )
    };
    ([$($done:expr,)*] $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::__json_object!(
            [$($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])),]
            $($rest)*
        )
    };
    ([$($done:expr,)*] $key:literal : [ $($inner:tt)* ]) => {
        $crate::__json_object!(
            [$($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])),]
        )
    };
    ([$($done:expr,)*] $key:literal : null , $($rest:tt)*) => {
        $crate::__json_object!(
            [$($done,)* ($key.to_string(), $crate::Value::Null),]
            $($rest)*
        )
    };
    ([$($done:expr,)*] $key:literal : null) => {
        $crate::__json_object!([$($done,)* ($key.to_string(), $crate::Value::Null),])
    };
    ([$($done:expr,)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::__json_object!(
            [$($done,)* ($key.to_string(), $crate::to_value(&$value)),]
            $($rest)*
        )
    };
    ([$($done:expr,)*] $key:literal : $value:expr) => {
        $crate::__json_object!([$($done,)* ($key.to_string(), $crate::to_value(&$value)),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let v = parse_value_str(r#"{"a": 1, "b": [true, null, -2, 1.5], "c": "x\ny"}"#)
            .expect("parses");
        assert!(v.is_object());
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0], true);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2].as_f64(), Some(-2.0));
        assert_eq!(v["b"][3].as_f64(), Some(1.5));
        assert_eq!(v["c"].as_str(), Some("x\ny"));
        let text = v.to_string();
        assert_eq!(parse_value_str(&text).expect("reparses"), v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&60.0f64).unwrap(), "60.0");
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(to_string(&7u64).unwrap(), "7");
    }

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!({"k": 1}), json!({"k": 2})];
        let v = json!({
            "scale": "ci",
            "pair": [1.0, 2.0],
            "rows": rows,
            "flag": true,
        });
        assert!(v.is_object());
        assert_eq!(v["rows"].as_array().map(|a| a.len()), Some(2));
        assert_eq!(v["rows"][1]["k"].as_u64(), Some(2));
        assert_eq!(v["flag"], true);
        assert_eq!(v["pair"][0].as_f64(), Some(1.0));
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = json!({"a": 1});
        assert!(v["nope"].is_null());
        assert!(v.get("nope").is_none());
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = json!({"a": [1, 2], "b": {"c": "d"}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse_value_str(&text).unwrap(), v);
    }
}
